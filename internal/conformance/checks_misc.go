package conformance

import (
	"pthreads/internal/core"
	"pthreads/internal/unixkern"
	"pthreads/internal/vtime"
)

// setjmp/longjmp, errno, sleep/io, lazy creation, perverted scheduling,
// stack accounting.

func init() {
	register("jmp", 1,
		"setjmp returns 0 on the direct path and the longjmp value afterwards",
		func(s *core.System) error {
			var jb core.JmpBuf
			path := ""
			v := s.Setjmp(&jb, func() {
				path = "direct"
				s.Longjmp(&jb, 5)
				path = "unreachable"
			})
			if v != 5 || path != "direct" {
				return failf("v=%d path=%s", v, path)
			}
			return nil
		})

	register("jmp", 2,
		"longjmp with value 0 makes setjmp return 1",
		func(s *core.System) error {
			var jb core.JmpBuf
			if v := s.Setjmp(&jb, func() { s.Longjmp(&jb, 0) }); v != 1 {
				return failf("v=%d", v)
			}
			return nil
		})

	register("jmp", 3,
		"siglongjmp restores the signal mask saved by sigsetjmp",
		func(s *core.System) error {
			s.SetSigmask(unixkern.MakeSigset(unixkern.SIGUSR1))
			var jb core.JmpBuf
			s.Sigsetjmp(&jb, func() {
				s.SetSigmask(unixkern.MakeSigset(unixkern.SIGUSR2))
				s.Longjmp(&jb, 1)
			})
			if !s.Sigmask().Has(unixkern.SIGUSR1) || s.Sigmask().Has(unixkern.SIGUSR2) {
				return failf("mask %v", s.Sigmask())
			}
			return nil
		})

	register("errno", 1,
		"errno is maintained per thread across context switches",
		func(s *core.System) error {
			s.SetErrno(core.EBUSY)
			attr := core.DefaultAttr()
			attr.Priority = s.Self().Priority() + 1
			th, _ := s.Create(attr, func(any) any {
				s.SetErrno(core.ENOMEM)
				s.Yield()
				return s.Errno()
			}, nil)
			v, _ := s.Join(th)
			if v != core.ENOMEM || s.Errno() != core.EBUSY {
				return failf("child=%v main=%v", v, s.Errno())
			}
			return nil
		})

	register("errno", 2,
		"failed library calls set the caller's errno",
		func(s *core.System) error {
			m := s.MustMutex(core.MutexAttr{Name: "m"})
			m.Unlock()
			if s.Errno() != core.EPERM {
				return failf("errno %v", s.Errno())
			}
			return nil
		})

	register("io", 1,
		"sleep suspends for at least the requested virtual time",
		func(s *core.System) error {
			t0 := s.Now()
			if rem := s.Sleep(3 * vtime.Millisecond); rem != 0 {
				return failf("remaining %v", rem)
			}
			if s.Now().Sub(t0) < 3*vtime.Millisecond {
				return failf("woke early")
			}
			return nil
		})

	register("io", 2,
		"a signal handler interrupts sleep, which reports the unslept time",
		func(s *core.System) error {
			s.Sigaction(unixkern.SIGUSR1, func(unixkern.Signal, *unixkern.SigInfo, *core.SigContext) {}, 0)
			attr := core.DefaultAttr()
			attr.Priority = s.Self().Priority() + 1
			th, _ := s.Create(attr, func(any) any { return s.Sleep(vtime.Second) }, nil)
			s.Kill(th, unixkern.SIGUSR1)
			v, _ := s.Join(th)
			if rem, ok := v.(vtime.Duration); !ok || rem <= 0 {
				return failf("remaining %v", v)
			}
			return nil
		})

	register("io", 3,
		"asynchronous I/O completion resumes exactly the requesting thread",
		func(s *core.System) error {
			results := map[string]int{}
			var ths []*core.Thread
			for _, spec := range []struct {
				name  string
				lat   vtime.Duration
				bytes int
			}{
				{"slow", 4 * vtime.Millisecond, 111},
				{"fast", 1 * vtime.Millisecond, 222},
			} {
				spec := spec
				attr := core.DefaultAttr()
				attr.Name = spec.name
				th, _ := s.Create(attr, func(any) any {
					n, err := s.AioRead(spec.lat, spec.bytes)
					if err != nil {
						return err
					}
					results[spec.name] = n
					return nil
				}, nil)
				ths = append(ths, th)
			}
			for _, th := range ths {
				s.Join(th)
			}
			if results["slow"] != 111 || results["fast"] != 222 {
				return failf("results %v", results)
			}
			return nil
		})

	register("thread", 9,
		"a lazily created thread stays inactive until first needed",
		func(s *core.System) error {
			ran := false
			attr := core.DefaultAttr()
			attr.Lazy = true
			attr.Priority = s.Self().Priority() + 1
			th, _ := s.Create(attr, func(any) any { ran = true; return nil }, nil)
			s.Yield()
			if ran {
				return failf("lazy thread ran before activation")
			}
			if _, err := s.Join(th); err != nil {
				return err
			}
			if !ran {
				return failf("join did not activate")
			}
			return nil
		})

	register("thread", 10,
		"pthread_detach on a terminated thread reclaims it; the handle becomes invalid",
		func(s *core.System) error {
			attr := core.DefaultAttr()
			attr.Priority = s.Self().Priority() + 1
			th, _ := s.Create(attr, func(any) any { return nil }, nil)
			if err := s.Detach(th); err != nil {
				return err
			}
			if _, err := s.Join(th); err == nil {
				return failf("joined a reclaimed thread")
			}
			return nil
		})

	register("pervert", 1,
		"perverted scheduling runs are exactly reproducible from the seed",
		func(s *core.System) error {
			// Two fresh systems with the same seed produce identical
			// traces; s itself is unused beyond hosting the check.
			run := func() vtime.Time {
				sys := core.New(core.Config{Pervert: core.PervertRandom, Seed: 77})
				sys.Run(func() {
					m := sys.MustMutex(core.MutexAttr{Name: "m", Protocol: core.ProtocolInherit})
					var ths []*core.Thread
					for i := 0; i < 3; i++ {
						attr := core.DefaultAttr()
						th, _ := sys.Create(attr, func(any) any {
							for j := 0; j < 4; j++ {
								m.Lock()
								m.Unlock()
							}
							return nil
						}, nil)
						ths = append(ths, th)
					}
					for _, th := range ths {
						sys.Join(th)
					}
				})
				return sys.Now()
			}
			if a, b := run(), run(); a != b {
				return failf("diverged: %v vs %v", a, b)
			}
			return nil
		})

	register("pervert", 2,
		"perverted policies preserve the semantics of correctly synchronized programs",
		func(s *core.System) error {
			for _, pol := range []core.PervertPolicy{core.PervertMutexSwitch, core.PervertRROrdered, core.PervertRandom} {
				sys := core.New(core.Config{Pervert: pol, Seed: 9})
				total := 0
				err := sys.Run(func() {
					m := sys.MustMutex(core.MutexAttr{Name: "m", Protocol: core.ProtocolInherit})
					var ths []*core.Thread
					for i := 0; i < 3; i++ {
						attr := core.DefaultAttr()
						th, _ := sys.Create(attr, func(any) any {
							for j := 0; j < 8; j++ {
								m.Lock()
								total++
								m.Unlock()
							}
							return nil
						}, nil)
						ths = append(ths, th)
					}
					for _, th := range ths {
						sys.Join(th)
					}
				})
				if err != nil || total != 24 {
					return failf("%v: err=%v total=%d", pol, err, total)
				}
			}
			return nil
		})

	register("stack", 1,
		"stack consumption is accounted and released",
		func(s *core.System) error {
			free := s.StackFree()
			s.UseStack(2048, func() {
				if s.StackFree() != free-2048 {
					panic("not accounted")
				}
			})
			if s.StackFree() != free {
				return failf("not released")
			}
			return nil
		})

	register("stack", 2,
		"stack exhaustion raises a recoverable synchronous SIGSEGV",
		func(s *core.System) error {
			var jb core.JmpBuf
			s.Sigaction(unixkern.SIGSEGV, func(_ unixkern.Signal, info *unixkern.SigInfo, sc *core.SigContext) {
				if info.Code == core.SegvCodeStackOverflow {
					sc.RedirectTo(&jb, 1)
				}
			}, 0)
			recovered := s.Setjmp(&jb, func() {
				s.UseStack(s.StackFree()+1, func() {})
			}) == 1
			if !recovered {
				return failf("overflow not recovered")
			}
			return nil
		})
}
