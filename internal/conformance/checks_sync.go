package conformance

import (
	"pthreads/internal/core"
	"pthreads/internal/sem"
	"pthreads/internal/vtime"
)

// Mutexes, condition variables, semaphores.

func init() {
	register("mutex", 1,
		"a locked mutex excludes other threads until unlocked",
		func(s *core.System) error {
			m := s.MustMutex(core.MutexAttr{Name: "m"})
			m.Lock()
			acquired := false
			attr := core.DefaultAttr()
			attr.Priority = s.Self().Priority() + 1
			th, _ := s.Create(attr, func(any) any {
				m.Lock()
				acquired = true
				m.Unlock()
				return nil
			}, nil)
			if acquired {
				return failf("contender acquired a held mutex")
			}
			m.Unlock()
			s.Join(th)
			if !acquired {
				return failf("contender never acquired after unlock")
			}
			return nil
		})

	register("mutex", 2,
		"unlocking a mutex the caller does not hold fails with EPERM",
		func(s *core.System) error {
			m := s.MustMutex(core.MutexAttr{Name: "m"})
			return expectErrno(m.Unlock(), core.EPERM, "unlock unowned")
		})

	register("mutex", 3,
		"relocking a held (non-recursive) mutex is EDEADLK",
		func(s *core.System) error {
			m := s.MustMutex(core.MutexAttr{Name: "m"})
			m.Lock()
			defer m.Unlock()
			return expectErrno(m.Lock(), core.EDEADLK, "relock")
		})

	register("mutex", 4,
		"pthread_mutex_trylock on a held mutex returns EBUSY without blocking",
		func(s *core.System) error {
			m := s.MustMutex(core.MutexAttr{Name: "m"})
			m.Lock()
			defer m.Unlock()
			attr := core.DefaultAttr()
			attr.Priority = s.Self().Priority() + 1
			th, _ := s.Create(attr, func(any) any {
				e, _ := core.AsErrno(m.TryLock())
				return e
			}, nil)
			v, _ := s.Join(th)
			if v != core.EBUSY {
				return failf("trylock: %v", v)
			}
			return nil
		})

	register("mutex", 5,
		"on unlock, the highest-priority waiter acquires the mutex",
		func(s *core.System) error {
			m := s.MustMutex(core.MutexAttr{Name: "m"})
			m.Lock()
			var first int
			got := false
			for _, p := range []int{8, 12, 10} {
				p := p
				attr := core.DefaultAttr()
				attr.Priority = p
				s.Create(attr, func(any) any {
					m.Lock()
					if !got {
						got = true
						first = p
					}
					m.Unlock()
					return nil
				}, nil)
			}
			s.Sleep(vtime.Millisecond)
			m.Unlock()
			s.Sleep(vtime.Millisecond)
			if first != 12 {
				return failf("first grant to priority %d", first)
			}
			return nil
		})

	register("mutex", 6,
		"priority inheritance boosts the owner to the highest contender priority",
		func(s *core.System) error {
			m := s.MustMutex(core.MutexAttr{Name: "m", Protocol: core.ProtocolInherit})
			boost := 0
			attr := core.DefaultAttr()
			attr.Priority = 4
			low, _ := s.Create(attr, func(any) any {
				m.Lock()
				s.Compute(2 * vtime.Millisecond)
				boost = s.Self().Priority()
				m.Unlock()
				return nil
			}, nil)
			hi := core.DefaultAttr()
			hi.Priority = 22
			hith, _ := s.Create(hi, func(any) any {
				s.Sleep(vtime.Millisecond)
				m.Lock()
				m.Unlock()
				return nil
			}, nil)
			s.Join(low)
			s.Join(hith)
			if boost != 22 {
				return failf("boost %d", boost)
			}
			return nil
		})

	register("mutex", 7,
		"priority ceiling raises the locker to the ceiling at lock and restores it at unlock",
		func(s *core.System) error {
			m := s.MustMutex(core.MutexAttr{Name: "m", Protocol: core.ProtocolCeiling, Ceiling: 28})
			base := s.Self().Priority()
			m.Lock()
			atLock := s.Self().Priority()
			m.Unlock()
			after := s.Self().Priority()
			if atLock != 28 || after != base {
				return failf("prio %d/%d", atLock, after)
			}
			return nil
		})

	register("mutex", 8,
		"locking a ceiling mutex from above its ceiling is EINVAL",
		func(s *core.System) error {
			m := s.MustMutex(core.MutexAttr{Name: "m", Protocol: core.ProtocolCeiling, Ceiling: 2})
			return expectErrno(m.Lock(), core.EINVAL, "lock above ceiling")
		})

	register("mutex", 9,
		"pthread_mutex_destroy on a locked mutex is EBUSY",
		func(s *core.System) error {
			m := s.MustMutex(core.MutexAttr{Name: "m"})
			m.Lock()
			err := expectErrno(m.Destroy(), core.EBUSY, "destroy locked")
			m.Unlock()
			return err
		})

	register("cond", 1,
		"pthread_cond_wait releases the mutex and reacquires it before returning",
		func(s *core.System) error {
			m := s.MustMutex(core.MutexAttr{Name: "m"})
			c := s.NewCond("c")
			freeDuringWait := false
			ownedAtReturn := false
			attr := core.DefaultAttr()
			attr.Priority = s.Self().Priority() + 1
			th, _ := s.Create(attr, func(any) any {
				m.Lock()
				c.Wait(m)
				ownedAtReturn = m.Owner() == s.Self()
				m.Unlock()
				return nil
			}, nil)
			freeDuringWait = m.TryLock() == nil
			if freeDuringWait {
				c.Signal()
				m.Unlock()
			}
			s.Join(th)
			if !freeDuringWait || !ownedAtReturn {
				return failf("free=%v owned=%v", freeDuringWait, ownedAtReturn)
			}
			return nil
		})

	register("cond", 2,
		"waiting on a condition variable without holding the mutex is an error",
		func(s *core.System) error {
			m := s.MustMutex(core.MutexAttr{Name: "m"})
			c := s.NewCond("c")
			return expectErrno(c.Wait(m), core.EPERM, "wait without mutex")
		})

	register("cond", 3,
		"pthread_cond_signal wakes at least one waiter; the highest priority first",
		func(s *core.System) error {
			m := s.MustMutex(core.MutexAttr{Name: "m"})
			c := s.NewCond("c")
			var first int
			got := false
			var ths []*core.Thread
			for _, p := range []int{9, 13, 11} {
				p := p
				attr := core.DefaultAttr()
				attr.Priority = p
				th, _ := s.Create(attr, func(any) any {
					m.Lock()
					c.Wait(m)
					if !got {
						got = true
						first = p
					}
					m.Unlock()
					return nil
				}, nil)
				ths = append(ths, th)
			}
			s.Sleep(vtime.Millisecond)
			c.Signal()
			s.Sleep(vtime.Millisecond)
			if !got || first != 13 {
				return failf("first woken %d (got=%v)", first, got)
			}
			c.Broadcast() // release the remaining waiters
			for _, th := range ths {
				s.Join(th)
			}
			return nil
		})

	register("cond", 4,
		"pthread_cond_broadcast wakes every waiter",
		func(s *core.System) error {
			m := s.MustMutex(core.MutexAttr{Name: "m"})
			c := s.NewCond("c")
			woken := 0
			for i := 0; i < 4; i++ {
				attr := core.DefaultAttr()
				attr.Priority = s.Self().Priority() + 1
				s.Create(attr, func(any) any {
					m.Lock()
					c.Wait(m)
					woken++
					m.Unlock()
					return nil
				}, nil)
			}
			c.Broadcast()
			s.Sleep(vtime.Millisecond)
			if woken != 4 {
				return failf("woken %d", woken)
			}
			return nil
		})

	register("cond", 5,
		"a timed wait returns ETIMEDOUT with the mutex reacquired",
		func(s *core.System) error {
			m := s.MustMutex(core.MutexAttr{Name: "m"})
			c := s.NewCond("c")
			m.Lock()
			err := c.TimedWait(m, vtime.Millisecond)
			if e := expectErrno(err, core.ETIMEDOUT, "timedwait"); e != nil {
				return e
			}
			if m.Owner() != s.Self() {
				return failf("mutex not held after timeout")
			}
			m.Unlock()
			return nil
		})

	register("sem", 1,
		"a semaphore P on zero count suspends until a V",
		func(s *core.System) error {
			sm := sem.Must(s, "s", 0)
			acquired := false
			attr := core.DefaultAttr()
			attr.Priority = s.Self().Priority() + 1
			th, _ := s.Create(attr, func(any) any {
				sm.P()
				acquired = true
				return nil
			}, nil)
			if acquired {
				return failf("P on zero did not suspend")
			}
			sm.V()
			s.Join(th)
			if !acquired {
				return failf("V did not release the waiter")
			}
			return nil
		})

	register("sem", 2,
		"semaphore counts are conserved across many P/V pairs",
		func(s *core.System) error {
			sm := sem.Must(s, "s", 2)
			var ths []*core.Thread
			for i := 0; i < 4; i++ {
				attr := core.DefaultAttr()
				th, _ := s.Create(attr, func(any) any {
					for j := 0; j < 10; j++ {
						sm.P()
						sm.V()
					}
					return nil
				}, nil)
				ths = append(ths, th)
			}
			for _, th := range ths {
				s.Join(th)
			}
			if sm.Value() != 2 {
				return failf("final value %d", sm.Value())
			}
			return nil
		})
}
