package sched

import "testing"

func BenchmarkEnqueueDequeueSamePrio(b *testing.B) {
	var q Queue[int]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(i, DefaultPrio)
		q.DequeueMax()
	}
}

func BenchmarkEnqueueDequeueSpread(b *testing.B) {
	var q Queue[int]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(i, i%NumPrio)
		if i%4 == 3 {
			for j := 0; j < 4; j++ {
				q.DequeueMax()
			}
		}
	}
}

func BenchmarkPeekMaxLoaded(b *testing.B) {
	var q Queue[int]
	for i := 0; i < 64; i++ {
		q.Enqueue(i, i%NumPrio)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.PeekMax()
	}
}

func BenchmarkRemove(b *testing.B) {
	var q Queue[int]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(i, 7)
		q.Remove(i, 7)
	}
}
