package sched

import "testing"

// wrapRing drives a level's ring past its physical end: fill to the
// initial capacity, then slide the window (dequeue one, enqueue one) so
// head walks around the buffer edge repeatedly.
func wrapRing(t *testing.T, q *Queue[int], prio, slides int) {
	t.Helper()
	next := 0
	for ; next < minRingCap; next++ {
		q.Enqueue(next, prio)
	}
	for s := 0; s < slides; s++ {
		x, _, ok := q.DequeueMax()
		if !ok || x != next-minRingCap {
			t.Fatalf("slide %d: dequeued %d,%v, want %d", s, x, ok, next-minRingCap)
		}
		q.Enqueue(next, prio)
		next++
	}
}

// TestRingFIFOAcrossWraparound checks that FIFO order within a level
// survives many wrap-arounds of the circular buffer.
func TestRingFIFOAcrossWraparound(t *testing.T) {
	var q Queue[int]
	const slides = 5 * minRingCap
	wrapRing(t, &q, DefaultPrio, slides)
	if q.Stats().Wraps == 0 {
		t.Fatalf("no wraps counted after %d slides over a %d-slot ring", slides, minRingCap)
	}
	for want := slides; ; want++ {
		x, _, ok := q.DequeueMax()
		if !ok {
			if want != slides+minRingCap {
				t.Fatalf("queue drained after %d items, want %d", want-slides, minRingCap)
			}
			break
		}
		if x != want {
			t.Fatalf("dequeued %d, want %d: FIFO broken across wrap", x, want)
		}
	}
}

// TestEnqueueHeadOrdering checks the preemption case: a head-inserted
// item is dequeued before everything already queued at its level, and
// tail order behind it is untouched.
func TestEnqueueHeadOrdering(t *testing.T) {
	var q Queue[int]
	q.Enqueue(1, DefaultPrio)
	q.Enqueue(2, DefaultPrio)
	q.EnqueueHead(0, DefaultPrio) // the preempted thread goes first
	q.Enqueue(3, DefaultPrio)
	for want := 0; want <= 3; want++ {
		x, _, ok := q.DequeueMax()
		if !ok || x != want {
			t.Fatalf("dequeued %d,%v, want %d", x, ok, want)
		}
	}

	// Head insertion into an empty and a full (about-to-grow) level.
	q.EnqueueHead(10, 3)
	for i := 0; i < minRingCap; i++ {
		q.Enqueue(11+i, 3)
	}
	q.EnqueueHead(9, 3) // forces growth with a wrapped head
	if x, ok := q.DequeueAt(3); !ok || x != 9 {
		t.Fatalf("DequeueAt = %d,%v, want 9", x, ok)
	}
	if x, ok := q.DequeueAt(3); !ok || x != 10 {
		t.Fatalf("DequeueAt = %d,%v, want 10", x, ok)
	}
}

// TestRemoveDuringWrap removes items from the middle of a level whose
// ring is wrapped (head near the buffer end, tail wrapped to the front),
// hitting both the shift-head-side and shift-tail-side paths.
func TestRemoveDuringWrap(t *testing.T) {
	var q Queue[int]
	wrapRing(t, &q, DefaultPrio, minRingCap-2) // head is now near the end
	items := q.Items()
	if len(items) != minRingCap {
		t.Fatalf("setup: %d items, want %d", len(items), minRingCap)
	}

	// Remove one item near the head (shifts head side) and one near the
	// tail (shifts tail side).
	for _, victim := range []int{items[1], items[len(items)-2]} {
		if !q.Remove(victim, DefaultPrio) {
			t.Fatalf("Remove(%d) failed", victim)
		}
		if q.Contains(victim) {
			t.Fatalf("Contains(%d) after Remove", victim)
		}
	}

	// Remaining order must be the original minus the victims.
	want := []int{}
	for i, x := range items {
		if i != 1 && i != len(items)-2 {
			want = append(want, x)
		}
	}
	got := q.Items()
	if len(got) != len(want) {
		t.Fatalf("%d items left, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order after removal: %v, want %v", got, want)
		}
	}
}

// TestQueueStatsCounters checks MaxDepth, Wraps and Grows.
func TestQueueStatsCounters(t *testing.T) {
	var q Queue[int]
	if s := q.Stats(); s != (Stats{}) {
		t.Fatalf("fresh queue stats %+v, want zero", s)
	}
	for i := 0; i < minRingCap+1; i++ { // one past capacity: forces a grow
		q.Enqueue(i, DefaultPrio)
	}
	q.Enqueue(100, DefaultPrio+1)
	s := q.Stats()
	if s.MaxDepth != int64(minRingCap+2) {
		t.Fatalf("MaxDepth %d, want %d", s.MaxDepth, minRingCap+2)
	}
	// Initial allocation + doubling at DefaultPrio, initial allocation at
	// DefaultPrio+1.
	if s.Grows != 3 {
		t.Fatalf("Grows %d, want 3", s.Grows)
	}
	for !q.Empty() {
		q.DequeueMax()
	}
	if got := q.Stats(); got != s {
		t.Fatalf("dequeues changed stats: %+v vs %+v", got, s)
	}
	// Slide a full window to force wraps.
	wrapped := q.Stats().Wraps
	wrapRing(t, &q, DefaultPrio, 4*minRingCap)
	if q.Stats().Wraps <= wrapped {
		t.Fatalf("Wraps did not advance: %d", q.Stats().Wraps)
	}
	// MaxDepth is cumulative: a shallower second run must not lower it.
	if q.Stats().MaxDepth != s.MaxDepth {
		t.Fatalf("MaxDepth fell to %d, want %d retained", q.Stats().MaxDepth, s.MaxDepth)
	}
}

// TestAdaptiveIndexLifecycle white-boxes the membership index: inactive
// until RemoveAny, coherent while live, released when the queue drains,
// and the map reused on reactivation.
func TestAdaptiveIndexLifecycle(t *testing.T) {
	var q Queue[int]
	q.Enqueue(1, 4)
	q.Enqueue(2, 9)
	q.Enqueue(3, 4)
	if q.index != nil {
		t.Fatal("index active before any RemoveAny")
	}
	if p, ok := q.RemoveAny(2); !ok || p != 9 {
		t.Fatalf("RemoveAny(2) = %d,%v, want 9,true", p, ok)
	}
	if q.index == nil {
		t.Fatal("index not activated by RemoveAny")
	}
	if len(q.index) != 2 {
		t.Fatalf("index has %d entries, want 2", len(q.index))
	}
	// Maintained by enqueue and Remove while live.
	q.Enqueue(4, 30)
	if l, ok := q.index[4]; !ok || int(l) != 30 {
		t.Fatalf("index[4] = %d,%v after Enqueue", l, ok)
	}
	if !q.Remove(3, 4) {
		t.Fatal("Remove(3,4) failed")
	}
	if _, ok := q.index[3]; ok {
		t.Fatal("index retains removed item")
	}
	// O(1) reject through the index: wrong level misses fast.
	if q.Remove(4, 7) {
		t.Fatal("Remove(4,7) succeeded at the wrong level")
	}
	// Draining deactivates; the map is parked for reuse.
	q.DequeueMax()
	q.DequeueMax()
	if !q.Empty() {
		t.Fatalf("queue not empty: %v", q.Items())
	}
	if q.index != nil {
		t.Fatal("index still active after drain")
	}
	if q.spare == nil {
		t.Fatal("spare map not retained after deactivation")
	}
	// Reactivation must reuse the spare map, not allocate a fresh one.
	q.Enqueue(5, 2)
	allocs := testing.AllocsPerRun(1, func() {
		q.RemoveAny(5)
		q.Enqueue(5, 2)
	})
	if allocs != 0 {
		t.Fatalf("index reactivation allocates %v/op, want 0", allocs)
	}
}

// TestQueueZeroAllocHotPath pins the tentpole claim: Enqueue, DequeueMax
// and EnqueueHead allocate nothing in steady state.
func TestQueueZeroAllocHotPath(t *testing.T) {
	var q Queue[int]
	// Warm up so every touched ring reaches its steady-state capacity.
	for i := 0; i < minRingCap; i++ {
		q.Enqueue(i, DefaultPrio)
		q.Enqueue(i, DefaultPrio+1)
	}
	for !q.Empty() {
		q.DequeueMax()
	}

	if n := testing.AllocsPerRun(200, func() {
		q.Enqueue(1, DefaultPrio)
		q.DequeueMax()
	}); n != 0 {
		t.Fatalf("Enqueue+DequeueMax allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		q.EnqueueHead(1, DefaultPrio)
		q.DequeueMax()
	}); n != 0 {
		t.Fatalf("EnqueueHead+DequeueMax allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		q.Enqueue(1, DefaultPrio)
		q.Enqueue(2, DefaultPrio+1)
		q.Enqueue(3, DefaultPrio)
		for !q.Empty() {
			q.DequeueMax()
		}
	}); n != 0 {
		t.Fatalf("mixed-level churn allocates %v/op, want 0", n)
	}
}
