package sched

// Per-CPU run queues for the simulated multiprocessor: one priority
// Queue per virtual CPU plus a deterministic work-stealing policy. The
// SMP executor in internal/core owns when these are consulted; this
// layer only provides the data structure and the (fixed, seed-free)
// victim-scan order, so the same sequence of operations always yields
// the same steals — determinism is inherited, not re-established.

// RunQueues is a set of per-CPU priority run queues over the existing
// ring-buffer deques.
type RunQueues[T comparable] struct {
	qs []Queue[T]

	// Steals counts successful steals per thief CPU, for reports.
	Steals []int64
}

// NewRunQueues builds run queues for n CPUs.
func NewRunQueues[T comparable](n int) *RunQueues[T] {
	if n < 1 {
		panic("sched: run queues need at least one CPU")
	}
	return &RunQueues[T]{qs: make([]Queue[T], n), Steals: make([]int64, n)}
}

// CPUs returns the number of per-CPU queues.
func (r *RunQueues[T]) CPUs() int { return len(r.qs) }

// Local returns CPU c's own queue for direct operations (enqueue on
// wakeup, requeue on yield).
func (r *RunQueues[T]) Local(c int) *Queue[T] { return &r.qs[c] }

// Len sums the queued items across all CPUs.
func (r *RunQueues[T]) Len() int {
	n := 0
	for i := range r.qs {
		n += r.qs[i].Len()
	}
	return n
}

// Pop takes the highest-priority item from CPU c's local queue.
func (r *RunQueues[T]) Pop(c int) (x T, p int, ok bool) {
	return r.qs[c].DequeueMax()
}

// Steal scans the other CPUs in ring order starting at c+1 and takes
// the highest-priority item from the first non-empty queue. It returns
// the victim CPU alongside the item; ok is false when every queue is
// empty. The fixed scan order (no randomization) keeps the executor's
// schedule a pure function of the operation sequence.
func (r *RunQueues[T]) Steal(c int) (x T, p int, victim int, ok bool) {
	n := len(r.qs)
	for d := 1; d < n; d++ {
		v := (c + d) % n
		if x, p, ok = r.qs[v].DequeueMax(); ok {
			r.Steals[c]++
			return x, p, v, true
		}
	}
	return x, 0, -1, false
}

// Busiest returns the CPU with the most queued items (lowest ID wins
// ties) and that count; used by balance reporting.
func (r *RunQueues[T]) Busiest() (cpu, n int) {
	cpu = -1
	for i := range r.qs {
		if l := r.qs[i].Len(); l > n {
			cpu, n = i, l
		}
	}
	return cpu, n
}
