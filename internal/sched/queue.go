// Package sched provides the priority-indexed FIFO queues used for the
// ready queue and for mutex/condition-variable wait queues.
//
// The structure matches the paper's scheduler: one FIFO per priority level
// plus a bitmap of non-empty levels, so that selecting the next thread is
// a find-highest-set-bit followed by a dequeue. Higher numeric priority is
// more urgent.
package sched

import (
	"fmt"
	"math/bits"
)

// Priority bounds. The POSIX.4a draft requires at least 32 distinct
// priority values for SCHED_FIFO/SCHED_RR; the library exposes exactly
// that range.
const (
	MinPrio     = 0
	MaxPrio     = 31
	NumPrio     = MaxPrio - MinPrio + 1
	DefaultPrio = 16
)

// ValidPrio reports whether p is a legal priority.
func ValidPrio(p int) bool { return p >= MinPrio && p <= MaxPrio }

// Queue is a priority queue of distinct items with FIFO order within each
// priority level. Items must be comparable; an item may be queued at most
// once (enforced only as far as Remove semantics require — callers keep
// that invariant).
type Queue[T comparable] struct {
	levels [NumPrio][]T
	bitmap uint32
	size   int
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return q.size }

// Empty reports whether the queue holds no items.
func (q *Queue[T]) Empty() bool { return q.size == 0 }

// LenAt reports the number of items queued at priority p.
func (q *Queue[T]) LenAt(p int) int { return len(q.levels[p-MinPrio]) }

func (q *Queue[T]) checkPrio(p int) {
	if !ValidPrio(p) {
		panic(fmt.Sprintf("sched: priority %d out of range [%d,%d]", p, MinPrio, MaxPrio))
	}
}

// Enqueue appends the item at the tail of its priority level — the normal
// position for a thread that yields, exhausts its time slice, or becomes
// ready.
func (q *Queue[T]) Enqueue(x T, p int) {
	q.checkPrio(p)
	i := p - MinPrio
	q.levels[i] = append(q.levels[i], x)
	q.bitmap |= 1 << uint(i)
	q.size++
}

// EnqueueHead inserts the item at the head of its priority level — the
// position for a thread that was preempted, or whose boosted priority is
// being reset ("neither should any other thread at the same priority level
// be scheduled instead of the current thread when the priority is reset").
func (q *Queue[T]) EnqueueHead(x T, p int) {
	q.checkPrio(p)
	i := p - MinPrio
	q.levels[i] = append([]T{x}, q.levels[i]...)
	q.bitmap |= 1 << uint(i)
	q.size++
}

// MaxLevel returns the highest non-empty priority, or ok=false when the
// queue is empty.
func (q *Queue[T]) MaxLevel() (p int, ok bool) {
	if q.bitmap == 0 {
		return 0, false
	}
	return MinPrio + 31 - bits.LeadingZeros32(q.bitmap), true
}

// PeekMax returns the item at the head of the highest non-empty level
// without removing it.
func (q *Queue[T]) PeekMax() (x T, p int, ok bool) {
	p, ok = q.MaxLevel()
	if !ok {
		var zero T
		return zero, 0, false
	}
	return q.levels[p-MinPrio][0], p, true
}

// DequeueMax removes and returns the head of the highest non-empty level.
func (q *Queue[T]) DequeueMax() (x T, p int, ok bool) {
	p, ok = q.MaxLevel()
	if !ok {
		var zero T
		return zero, 0, false
	}
	i := p - MinPrio
	x = q.levels[i][0]
	q.levels[i] = q.levels[i][1:]
	if len(q.levels[i]) == 0 {
		q.bitmap &^= 1 << uint(i)
	}
	q.size--
	return x, p, true
}

// DequeueAt removes and returns the head of level p.
func (q *Queue[T]) DequeueAt(p int) (x T, ok bool) {
	q.checkPrio(p)
	i := p - MinPrio
	if len(q.levels[i]) == 0 {
		var zero T
		return zero, false
	}
	x = q.levels[i][0]
	q.levels[i] = q.levels[i][1:]
	if len(q.levels[i]) == 0 {
		q.bitmap &^= 1 << uint(i)
	}
	q.size--
	return x, true
}

// Remove deletes the item from level p, reporting whether it was present.
// Used when a timed wait expires or a waiter is cancelled.
func (q *Queue[T]) Remove(x T, p int) bool {
	q.checkPrio(p)
	i := p - MinPrio
	for j, y := range q.levels[i] {
		if y == x {
			q.levels[i] = append(q.levels[i][:j], q.levels[i][j+1:]...)
			if len(q.levels[i]) == 0 {
				q.bitmap &^= 1 << uint(i)
			}
			q.size--
			return true
		}
	}
	return false
}

// RemoveAny deletes the item from whatever level it is queued at,
// reporting whether it was found. Used when the caller does not know the
// priority the item was queued with (after a boost, for example).
func (q *Queue[T]) RemoveAny(x T) (p int, ok bool) {
	for i := range q.levels {
		for j, y := range q.levels[i] {
			if y == x {
				q.levels[i] = append(q.levels[i][:j], q.levels[i][j+1:]...)
				if len(q.levels[i]) == 0 {
					q.bitmap &^= 1 << uint(i)
				}
				q.size--
				return i + MinPrio, true
			}
		}
	}
	return 0, false
}

// Contains reports whether the item is queued at any level.
func (q *Queue[T]) Contains(x T) bool {
	for i := range q.levels {
		for _, y := range q.levels[i] {
			if y == x {
				return true
			}
		}
	}
	return false
}

// Nth returns the n-th item in scheduling order (highest priority first,
// FIFO within a level). Used by the random-switch perverted policy to pick
// a uniformly random ready thread deterministically from a seeded PRNG.
func (q *Queue[T]) Nth(n int) (x T, p int, ok bool) {
	if n < 0 || n >= q.size {
		var zero T
		return zero, 0, false
	}
	for i := NumPrio - 1; i >= 0; i-- {
		l := q.levels[i]
		if n < len(l) {
			return l[n], i + MinPrio, true
		}
		n -= len(l)
	}
	var zero T
	return zero, 0, false
}

// Items returns all queued items in scheduling order. Used by diagnostics
// (deadlock reports) and tests.
func (q *Queue[T]) Items() []T {
	out := make([]T, 0, q.size)
	for i := NumPrio - 1; i >= 0; i-- {
		out = append(out, q.levels[i]...)
	}
	return out
}
