// Package sched provides the priority-indexed FIFO queues used for the
// ready queue and for mutex/condition-variable wait queues.
//
// The structure matches the paper's scheduler: one FIFO per priority level
// plus a bitmap of non-empty levels, so that selecting the next thread is
// a find-highest-set-bit followed by a dequeue. Higher numeric priority is
// more urgent.
//
// Each level is a ring-buffer deque (head index, item count, power-of-two
// capacity), so Enqueue, EnqueueHead and DequeueMax are O(1) with zero
// steady-state allocations — the host-side analogue of the paper's claim
// that ready-queue operations cost a fixed handful of instructions. The
// virtual cost of a queue operation is charged by the caller (the core
// kernel); nothing here touches the cost model.
//
// Remove and RemoveAny are served by an adaptive membership index: a
// map from item to level that is built on the first RemoveAny call,
// maintained in O(1) per operation while live, and dropped as soon as the
// queue drains. Workloads that never remove from the middle of a queue —
// the enqueue/dequeue hot path of the dispatcher — therefore never pay
// the hashing cost, while removal-heavy workloads (timed waits expiring,
// cancellation, priority changes under perverted policies) locate an
// item's level in O(1) instead of scanning all 32 levels.
package sched

import (
	"fmt"
	"math/bits"
)

// Priority bounds. The POSIX.4a draft requires at least 32 distinct
// priority values for SCHED_FIFO/SCHED_RR; the library exposes exactly
// that range.
const (
	MinPrio     = 0
	MaxPrio     = 31
	NumPrio     = MaxPrio - MinPrio + 1
	DefaultPrio = 16
)

// minRingCap is the initial capacity of a level's ring buffer. Must be a
// power of two.
const minRingCap = 8

// ValidPrio reports whether p is a legal priority.
func ValidPrio(p int) bool { return p >= MinPrio && p <= MaxPrio }

// ring is one priority level's FIFO: a circular buffer with a head index
// and an item count. Capacity is always a power of two, so positions are
// reduced with a mask instead of a division.
type ring[T comparable] struct {
	buf  []T
	head int // physical index of the first (oldest) item
	n    int
}

// at returns the item at logical offset i (0 = head).
func (r *ring[T]) at(i int) T { return r.buf[(r.head+i)&(len(r.buf)-1)] }

// Stats are cumulative host-side counters of one queue's ring behaviour,
// exposed so the harness can report per-run queue pressure.
type Stats struct {
	// MaxDepth is the peak number of items queued at once.
	MaxDepth int64
	// Wraps counts ring wrap-arounds: writes that crossed the edge of a
	// level's circular buffer (either end).
	Wraps int64
	// Grows counts ring capacity doublings.
	Grows int64
}

// Queue is a priority queue of distinct items with FIFO order within each
// priority level. Items must be comparable; an item may be queued at most
// once (enforced only as far as Remove semantics require — callers keep
// that invariant).
type Queue[T comparable] struct {
	levels [NumPrio]ring[T]
	bitmap uint32
	size   int
	stats  Stats

	// index is the adaptive membership index: item -> level. nil while
	// inactive (the steady state for enqueue/dequeue workloads); built by
	// RemoveAny, maintained by every mutating operation while non-nil,
	// and released when the queue drains. spare retains the map across
	// activations so reactivation does not allocate.
	index map[T]int8
	spare map[T]int8
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return q.size }

// Empty reports whether the queue holds no items.
func (q *Queue[T]) Empty() bool { return q.size == 0 }

// LenAt reports the number of items queued at priority p.
func (q *Queue[T]) LenAt(p int) int { return q.levels[p-MinPrio].n }

// Stats returns the queue's cumulative host-side counters.
func (q *Queue[T]) Stats() Stats { return q.stats }

func (q *Queue[T]) checkPrio(p int) {
	if !ValidPrio(p) {
		panic(fmt.Sprintf("sched: priority %d out of range [%d,%d]", p, MinPrio, MaxPrio))
	}
}

// grow doubles (or initially allocates) a ring's buffer, re-packing the
// items at the front.
func (q *Queue[T]) grow(r *ring[T]) {
	nc := len(r.buf) * 2
	if nc == 0 {
		nc = minRingCap
	}
	nb := make([]T, nc)
	for i := 0; i < r.n; i++ {
		nb[i] = r.at(i)
	}
	r.buf = nb
	r.head = 0
	q.stats.Grows++
}

// noteDepth updates the peak-depth counter after an insertion.
func (q *Queue[T]) noteDepth() {
	if int64(q.size) > q.stats.MaxDepth {
		q.stats.MaxDepth = int64(q.size)
	}
}

// Enqueue appends the item at the tail of its priority level — the normal
// position for a thread that yields, exhausts its time slice, or becomes
// ready.
func (q *Queue[T]) Enqueue(x T, p int) {
	q.checkPrio(p)
	i := p - MinPrio
	r := &q.levels[i]
	if r.n == len(r.buf) {
		q.grow(r)
	}
	pos := (r.head + r.n) & (len(r.buf) - 1)
	if pos == 0 && r.n > 0 {
		q.stats.Wraps++
	}
	r.buf[pos] = x
	r.n++
	q.bitmap |= 1 << uint(i)
	q.size++
	q.noteDepth()
	if q.index != nil {
		q.index[x] = int8(i)
	}
}

// EnqueueHead inserts the item at the head of its priority level — the
// position for a thread that was preempted, or whose boosted priority is
// being reset ("neither should any other thread at the same priority level
// be scheduled instead of the current thread when the priority is reset").
func (q *Queue[T]) EnqueueHead(x T, p int) {
	q.checkPrio(p)
	i := p - MinPrio
	r := &q.levels[i]
	if r.n == len(r.buf) {
		q.grow(r)
	}
	mask := len(r.buf) - 1
	r.head = (r.head - 1) & mask
	if r.head == mask && r.n > 0 {
		q.stats.Wraps++
	}
	r.buf[r.head] = x
	r.n++
	q.bitmap |= 1 << uint(i)
	q.size++
	q.noteDepth()
	if q.index != nil {
		q.index[x] = int8(i)
	}
}

// MaxLevel returns the highest non-empty priority, or ok=false when the
// queue is empty.
func (q *Queue[T]) MaxLevel() (p int, ok bool) {
	if q.bitmap == 0 {
		return 0, false
	}
	return MinPrio + 31 - bits.LeadingZeros32(q.bitmap), true
}

// PeekMax returns the item at the head of the highest non-empty level
// without removing it.
func (q *Queue[T]) PeekMax() (x T, p int, ok bool) {
	if q.bitmap == 0 {
		var zero T
		return zero, 0, false
	}
	i := 31 - bits.LeadingZeros32(q.bitmap)
	r := &q.levels[i]
	return r.buf[r.head], i + MinPrio, true
}

// popHead removes and returns the head of level i, maintaining the bitmap,
// size, and membership index.
func (q *Queue[T]) popHead(i int) T {
	r := &q.levels[i]
	x := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // release the reference for the GC
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	if r.n == 0 {
		q.bitmap &^= 1 << uint(i)
	}
	q.size--
	if q.index != nil {
		delete(q.index, x)
		if q.size == 0 {
			q.deactivateIndex()
		}
	}
	return x
}

// DequeueMax removes and returns the head of the highest non-empty level.
func (q *Queue[T]) DequeueMax() (x T, p int, ok bool) {
	if q.bitmap == 0 {
		var zero T
		return zero, 0, false
	}
	i := 31 - bits.LeadingZeros32(q.bitmap)
	return q.popHead(i), i + MinPrio, true
}

// DequeueAt removes and returns the head of level p.
func (q *Queue[T]) DequeueAt(p int) (x T, ok bool) {
	q.checkPrio(p)
	i := p - MinPrio
	if q.levels[i].n == 0 {
		var zero T
		return zero, false
	}
	return q.popHead(i), true
}

// removeAtOffset deletes the item at logical offset j of level i by
// shifting the shorter side of the ring toward the gap.
func (q *Queue[T]) removeAtOffset(i, j int) {
	r := &q.levels[i]
	mask := len(r.buf) - 1
	var zero T
	if j < r.n-1-j {
		// Shift the head side forward.
		for k := j; k > 0; k-- {
			r.buf[(r.head+k)&mask] = r.buf[(r.head+k-1)&mask]
		}
		r.buf[r.head] = zero
		r.head = (r.head + 1) & mask
	} else {
		// Shift the tail side back.
		for k := j; k < r.n-1; k++ {
			r.buf[(r.head+k)&mask] = r.buf[(r.head+k+1)&mask]
		}
		r.buf[(r.head+r.n-1)&mask] = zero
	}
	r.n--
	if r.n == 0 {
		q.bitmap &^= 1 << uint(i)
	}
	q.size--
}

// Remove deletes the item from level p, reporting whether it was present.
// Used when a timed wait expires or a waiter is cancelled. The level is
// known to the caller, so only that level's ring is searched.
func (q *Queue[T]) Remove(x T, p int) bool {
	q.checkPrio(p)
	i := p - MinPrio
	if q.index != nil {
		// O(1) membership reject while the index is live.
		l, ok := q.index[x]
		if !ok || int(l) != i {
			return false
		}
	}
	r := &q.levels[i]
	for j := 0; j < r.n; j++ {
		if r.at(j) == x {
			q.removeAtOffset(i, j)
			if q.index != nil {
				delete(q.index, x)
				if q.size == 0 {
					q.deactivateIndex()
				}
			}
			return true
		}
	}
	return false
}

// RemoveAny deletes the item from whatever level it is queued at,
// reporting whether it was found. Used when the caller does not know the
// priority the item was queued with (after a boost, for example). The
// first call activates the membership index, making the level lookup O(1)
// from then on.
func (q *Queue[T]) RemoveAny(x T) (p int, ok bool) {
	if q.index == nil {
		q.activateIndex()
	}
	l, ok := q.index[x]
	if !ok {
		return 0, false
	}
	i := int(l)
	r := &q.levels[i]
	for j := 0; j < r.n; j++ {
		if r.at(j) == x {
			q.removeAtOffset(i, j)
			delete(q.index, x)
			if q.size == 0 {
				q.deactivateIndex()
			}
			return i + MinPrio, true
		}
	}
	panic("sched: membership index out of sync")
}

// activateIndex builds the membership index from the current contents,
// reusing the map retained from an earlier activation when possible.
func (q *Queue[T]) activateIndex() {
	if q.spare != nil {
		q.index = q.spare
		q.spare = nil
	} else {
		q.index = make(map[T]int8, q.size)
	}
	bm := q.bitmap
	for bm != 0 {
		i := bits.TrailingZeros32(bm)
		bm &^= 1 << uint(i)
		r := &q.levels[i]
		for j := 0; j < r.n; j++ {
			q.index[r.at(j)] = int8(i)
		}
	}
}

// deactivateIndex releases the (now empty) index so the enqueue/dequeue
// hot path stops maintaining it; the map is kept for the next activation.
func (q *Queue[T]) deactivateIndex() {
	q.spare = q.index
	q.index = nil
}

// Contains reports whether the item is queued at any level.
func (q *Queue[T]) Contains(x T) bool {
	if q.index != nil {
		_, ok := q.index[x]
		return ok
	}
	bm := q.bitmap
	for bm != 0 {
		i := bits.TrailingZeros32(bm)
		bm &^= 1 << uint(i)
		r := &q.levels[i]
		for j := 0; j < r.n; j++ {
			if r.at(j) == x {
				return true
			}
		}
	}
	return false
}

// Nth returns the n-th item in scheduling order (highest priority first,
// FIFO within a level). Used by the random-switch perverted policy to pick
// a uniformly random ready thread deterministically from a seeded PRNG.
func (q *Queue[T]) Nth(n int) (x T, p int, ok bool) {
	if n < 0 || n >= q.size {
		var zero T
		return zero, 0, false
	}
	for i := NumPrio - 1; i >= 0; i-- {
		r := &q.levels[i]
		if n < r.n {
			return r.at(n), i + MinPrio, true
		}
		n -= r.n
	}
	var zero T
	return zero, 0, false
}

// Items returns all queued items in scheduling order. Used by diagnostics
// (deadlock reports) and tests.
func (q *Queue[T]) Items() []T {
	out := make([]T, 0, q.size)
	for i := NumPrio - 1; i >= 0; i-- {
		r := &q.levels[i]
		for j := 0; j < r.n; j++ {
			out = append(out, r.at(j))
		}
	}
	return out
}
