package sched

import "testing"

// FuzzQueueOps drives the priority queue with an opcode string and checks
// the core invariants after every operation: size consistency, bitmap
// consistency, and max-level correctness against a naive model.
func FuzzQueueOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 0, 1})
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 2})
	f.Add([]byte{2, 1, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var q Queue[int]
		model := map[int]int{} // id -> prio
		next := 0
		for i, op := range ops {
			switch op % 3 {
			case 0: // enqueue
				p := (int(op) / 3) % NumPrio
				q.Enqueue(next, p)
				model[next] = p
				next++
			case 1: // dequeue max
				x, p, ok := q.DequeueMax()
				if ok {
					mp, present := model[x]
					if !present || mp != p {
						t.Fatalf("op %d: dequeued %d@%d not in model", i, x, p)
					}
					// Verify no higher-priority item remained.
					for _, op2 := range model {
						if op2 > p {
							t.Fatalf("op %d: dequeued prio %d while %d exists", i, p, op2)
						}
					}
					delete(model, x)
				} else if len(model) != 0 {
					t.Fatalf("op %d: empty dequeue with %d items", i, len(model))
				}
			case 2: // remove one arbitrary item
				for id, p := range model {
					if !q.Remove(id, p) {
						t.Fatalf("op %d: Remove(%d,%d) failed", i, id, p)
					}
					delete(model, id)
					break
				}
			}
			if q.Len() != len(model) {
				t.Fatalf("op %d: Len %d vs model %d", i, q.Len(), len(model))
			}
			if p, ok := q.MaxLevel(); ok {
				max := -1
				for _, mp := range model {
					if mp > max {
						max = mp
					}
				}
				if p != max {
					t.Fatalf("op %d: MaxLevel %d vs model %d", i, p, max)
				}
			} else if len(model) != 0 {
				t.Fatalf("op %d: MaxLevel empty with items", i)
			}
		}
	})
}
