package sched

import (
	"testing"
)

// fuzzModel is the naive reference implementation: one ordered slice per
// priority level. Every queue operation is mirrored here and the full
// scheduling order is compared after each step, so any divergence in the
// ring-buffer deques (FIFO order across wrap-around, head insertion,
// middle removal, membership index coherence) is caught at the op that
// introduced it.
type fuzzModel struct {
	levels [NumPrio][]int
	size   int
}

func (m *fuzzModel) enqueue(x, i int)     { m.levels[i] = append(m.levels[i], x); m.size++ }
func (m *fuzzModel) enqueueHead(x, i int) { m.levels[i] = append([]int{x}, m.levels[i]...); m.size++ }

func (m *fuzzModel) removeAt(i, j int) {
	m.levels[i] = append(m.levels[i][:j], m.levels[i][j+1:]...)
	m.size--
}

func (m *fuzzModel) maxLevel() (int, bool) {
	for i := NumPrio - 1; i >= 0; i-- {
		if len(m.levels[i]) > 0 {
			return i, true
		}
	}
	return 0, false
}

// items returns the scheduling order, mirroring Queue.Items.
func (m *fuzzModel) items() []int {
	out := []int{}
	for i := NumPrio - 1; i >= 0; i-- {
		out = append(out, m.levels[i]...)
	}
	return out
}

// find locates an item, returning its level and offset.
func (m *fuzzModel) find(x int) (i, j int, ok bool) {
	for i := range m.levels {
		for j, v := range m.levels[i] {
			if v == x {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// FuzzQueueOps drives the priority queue with an opcode string and diffs
// it against the naive model after every operation: full ordering, size,
// per-level length, max level, and membership.
func FuzzQueueOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 0, 1})
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 2})
	f.Add([]byte{2, 1, 0})
	// Exercise EnqueueHead, RemoveAny and DequeueAt interleavings, and
	// enough same-level churn to force ring wrap-around and growth.
	f.Add([]byte{0, 3, 0, 3, 4, 1, 5, 0, 3, 4})
	f.Add([]byte{0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1})
	f.Add([]byte{3, 3, 3, 3, 4, 4, 4, 4, 5, 5})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var q Queue[int]
		var m fuzzModel
		next := 0
		for i, op := range ops {
			p := (int(op) / 6) % NumPrio
			switch op % 6 {
			case 0: // enqueue at tail
				q.Enqueue(next, p)
				m.enqueue(next, p)
				next++
			case 1: // dequeue max
				x, xp, ok := q.DequeueMax()
				if mi, mok := m.maxLevel(); mok != ok {
					t.Fatalf("op %d: DequeueMax ok=%v, model %v", i, ok, mok)
				} else if ok {
					if xp != mi+MinPrio || x != m.levels[mi][0] {
						t.Fatalf("op %d: DequeueMax %d@%d, model %d@%d", i, x, xp, m.levels[mi][0], mi+MinPrio)
					}
					m.removeAt(mi, 0)
				}
			case 2: // remove a specific item at its known level
				if len(m.items()) > 0 {
					want := m.items()[(int(op)/6)%m.size]
					mi, mj, _ := m.find(want)
					if !q.Remove(want, mi+MinPrio) {
						t.Fatalf("op %d: Remove(%d,%d) failed", i, want, mi+MinPrio)
					}
					m.removeAt(mi, mj)
				} else if q.Remove(0, p+MinPrio) {
					t.Fatalf("op %d: Remove succeeded on empty queue", i)
				}
			case 3: // enqueue at head
				q.EnqueueHead(next, p)
				m.enqueueHead(next, p)
				next++
			case 4: // remove without knowing the level
				if m.size > 0 {
					want := m.items()[(int(op)/6)%m.size]
					mi, mj, _ := m.find(want)
					rp, ok := q.RemoveAny(want)
					if !ok || rp != mi+MinPrio {
						t.Fatalf("op %d: RemoveAny(%d) = %d,%v, model level %d", i, want, rp, ok, mi+MinPrio)
					}
					m.removeAt(mi, mj)
				} else if _, ok := q.RemoveAny(next + 1); ok {
					t.Fatalf("op %d: RemoveAny succeeded on empty queue", i)
				}
			case 5: // dequeue at a specific level
				x, ok := q.DequeueAt(p + MinPrio)
				if mok := len(m.levels[p]) > 0; ok != mok {
					t.Fatalf("op %d: DequeueAt(%d) ok=%v, model %v", i, p+MinPrio, ok, mok)
				} else if ok {
					if x != m.levels[p][0] {
						t.Fatalf("op %d: DequeueAt(%d) = %d, model %d", i, p+MinPrio, x, m.levels[p][0])
					}
					m.removeAt(p, 0)
				}
			}

			// Full-state diff against the model.
			if q.Len() != m.size {
				t.Fatalf("op %d: Len %d vs model %d", i, q.Len(), m.size)
			}
			got, want := q.Items(), m.items()
			if len(got) != len(want) {
				t.Fatalf("op %d: Items len %d vs model %d", i, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("op %d: ordering diverged at %d: %v vs %v", i, k, got, want)
				}
			}
			for lvl := range m.levels {
				if q.LenAt(lvl+MinPrio) != len(m.levels[lvl]) {
					t.Fatalf("op %d: LenAt(%d) %d vs model %d", i, lvl+MinPrio, q.LenAt(lvl+MinPrio), len(m.levels[lvl]))
				}
			}
			if mp, ok := q.MaxLevel(); ok {
				mi, mok := m.maxLevel()
				if !mok || mp != mi+MinPrio {
					t.Fatalf("op %d: MaxLevel %d vs model %d,%v", i, mp, mi+MinPrio, mok)
				}
			} else if m.size != 0 {
				t.Fatalf("op %d: MaxLevel empty with %d items", i, m.size)
			}
			for _, x := range want {
				if !q.Contains(x) {
					t.Fatalf("op %d: Contains(%d) false for queued item", i, x)
				}
			}
			if q.Contains(next) {
				t.Fatalf("op %d: Contains(%d) true for never-queued item", i, next)
			}
		}
	})
}
