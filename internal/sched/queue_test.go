package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue[int]
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("new queue not empty")
	}
	if _, _, ok := q.PeekMax(); ok {
		t.Fatal("PeekMax on empty")
	}
	if _, _, ok := q.DequeueMax(); ok {
		t.Fatal("DequeueMax on empty")
	}
	if _, ok := q.MaxLevel(); ok {
		t.Fatal("MaxLevel on empty")
	}
}

func TestFIFOWithinLevel(t *testing.T) {
	var q Queue[int]
	q.Enqueue(1, 5)
	q.Enqueue(2, 5)
	q.Enqueue(3, 5)
	for want := 1; want <= 3; want++ {
		x, p, ok := q.DequeueMax()
		if !ok || x != want || p != 5 {
			t.Fatalf("got %d@%d, want %d@5", x, p, want)
		}
	}
}

func TestHighestPriorityFirst(t *testing.T) {
	var q Queue[string]
	q.Enqueue("lo", 1)
	q.Enqueue("hi", 30)
	q.Enqueue("mid", 15)
	want := []string{"hi", "mid", "lo"}
	for _, w := range want {
		x, _, _ := q.DequeueMax()
		if x != w {
			t.Fatalf("got %s, want %s", x, w)
		}
	}
}

func TestEnqueueHead(t *testing.T) {
	var q Queue[int]
	q.Enqueue(1, 5)
	q.EnqueueHead(2, 5)
	x, _, _ := q.DequeueMax()
	if x != 2 {
		t.Fatalf("head insert not first: got %d", x)
	}
}

func TestRemove(t *testing.T) {
	var q Queue[int]
	q.Enqueue(1, 5)
	q.Enqueue(2, 5)
	q.Enqueue(3, 5)
	if !q.Remove(2, 5) {
		t.Fatal("Remove returned false")
	}
	if q.Remove(2, 5) {
		t.Fatal("Remove returned true twice")
	}
	if q.Remove(9, 5) {
		t.Fatal("Remove of absent item")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	x, _, _ := q.DequeueMax()
	y, _, _ := q.DequeueMax()
	if x != 1 || y != 3 {
		t.Fatalf("got %d,%d", x, y)
	}
}

func TestRemoveAny(t *testing.T) {
	var q Queue[int]
	q.Enqueue(7, 3)
	p, ok := q.RemoveAny(7)
	if !ok || p != 3 {
		t.Fatalf("RemoveAny = %d, %v", p, ok)
	}
	if _, ok := q.RemoveAny(7); ok {
		t.Fatal("RemoveAny found removed item")
	}
}

func TestRemoveEmptiesBitmap(t *testing.T) {
	var q Queue[int]
	q.Enqueue(1, 9)
	q.Remove(1, 9)
	if _, ok := q.MaxLevel(); ok {
		t.Fatal("bitmap not cleared")
	}
	q.Enqueue(2, 4)
	if p, _ := q.MaxLevel(); p != 4 {
		t.Fatalf("MaxLevel = %d", p)
	}
}

func TestContains(t *testing.T) {
	var q Queue[int]
	q.Enqueue(1, 0)
	if !q.Contains(1) || q.Contains(2) {
		t.Fatal("Contains wrong")
	}
}

func TestLenAt(t *testing.T) {
	var q Queue[int]
	q.Enqueue(1, 2)
	q.Enqueue(2, 2)
	q.Enqueue(3, 4)
	if q.LenAt(2) != 2 || q.LenAt(4) != 1 || q.LenAt(0) != 0 {
		t.Fatal("LenAt wrong")
	}
}

func TestNth(t *testing.T) {
	var q Queue[string]
	q.Enqueue("a", 10)
	q.Enqueue("b", 10)
	q.Enqueue("c", 3)
	want := []string{"a", "b", "c"}
	for i, w := range want {
		x, _, ok := q.Nth(i)
		if !ok || x != w {
			t.Fatalf("Nth(%d) = %s, want %s", i, x, w)
		}
	}
	if _, _, ok := q.Nth(3); ok {
		t.Fatal("Nth out of range")
	}
	if _, _, ok := q.Nth(-1); ok {
		t.Fatal("Nth(-1)")
	}
}

func TestItemsOrder(t *testing.T) {
	var q Queue[int]
	q.Enqueue(3, 1)
	q.Enqueue(1, 20)
	q.Enqueue(2, 20)
	items := q.Items()
	want := []int{1, 2, 3}
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("Items = %v", items)
		}
	}
}

func TestDequeueAt(t *testing.T) {
	var q Queue[int]
	q.Enqueue(1, 5)
	q.Enqueue(2, 8)
	x, ok := q.DequeueAt(5)
	if !ok || x != 1 {
		t.Fatalf("DequeueAt = %d, %v", x, ok)
	}
	if _, ok := q.DequeueAt(5); ok {
		t.Fatal("DequeueAt on empty level")
	}
}

func TestInvalidPriorityPanics(t *testing.T) {
	var q Queue[int]
	for _, p := range []int{-1, 32, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for priority %d", p)
				}
			}()
			q.Enqueue(1, p)
		}()
	}
}

func TestValidPrio(t *testing.T) {
	if !ValidPrio(MinPrio) || !ValidPrio(MaxPrio) || ValidPrio(MinPrio-1) || ValidPrio(MaxPrio+1) {
		t.Fatal("ValidPrio wrong")
	}
}

// Property: dequeue order is always (priority desc, FIFO) regardless of
// the interleaving of enqueues.
func TestDequeueOrderProperty(t *testing.T) {
	f := func(prios []uint8) bool {
		var q Queue[int]
		type item struct{ id, prio int }
		var items []item
		for i, p := range prios {
			prio := int(p) % NumPrio
			q.Enqueue(i, prio)
			items = append(items, item{i, prio})
		}
		// Expected: stable sort by priority descending.
		for p := MaxPrio; p >= MinPrio; p-- {
			for _, it := range items {
				if it.prio != p {
					continue
				}
				x, gp, ok := q.DequeueMax()
				if !ok || x != it.id || gp != p {
					return false
				}
			}
		}
		return q.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: size bookkeeping survives random enqueue/dequeue/remove
// sequences, and the bitmap always matches the per-level contents.
func TestSizeInvariantProperty(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		var q Queue[int]
		rng := rand.New(rand.NewSource(seed))
		present := map[int]int{} // id -> prio
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				p := rng.Intn(NumPrio)
				q.Enqueue(next, p)
				present[next] = p
				next++
			case 1:
				if x, p, ok := q.DequeueMax(); ok {
					if present[x] != p {
						return false
					}
					delete(present, x)
				}
			case 2:
				for id, p := range present { // random-ish pick
					if !q.Remove(id, p) {
						return false
					}
					delete(present, id)
					break
				}
			}
			if q.Len() != len(present) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
