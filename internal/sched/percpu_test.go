package sched

import "testing"

func TestRunQueuesLocalAndPop(t *testing.T) {
	r := NewRunQueues[int](4)
	r.Local(2).Enqueue(10, 5)
	r.Local(2).Enqueue(11, 9)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if x, p, ok := r.Pop(2); !ok || x != 11 || p != 9 {
		t.Fatalf("Pop(2) = %d,%d,%v; want 11,9,true", x, p, ok)
	}
	if _, _, ok := r.Pop(0); ok {
		t.Fatalf("Pop(0) on empty local queue succeeded")
	}
}

func TestStealScanOrderDeterministic(t *testing.T) {
	r := NewRunQueues[int](4)
	r.Local(1).Enqueue(100, 3)
	r.Local(3).Enqueue(300, 7)
	// Thief 0 scans 1,2,3: finds CPU 1 first even though CPU 3 has the
	// higher-priority item — victim order is positional, not global.
	x, p, v, ok := r.Steal(0)
	if !ok || x != 100 || p != 3 || v != 1 {
		t.Fatalf("Steal(0) = %d,%d,cpu%d,%v; want 100,3,cpu1,true", x, p, v, ok)
	}
	// Thief 2 scans 3,0,1: finds CPU 3.
	x, _, v, ok = r.Steal(2)
	if !ok || x != 300 || v != 3 {
		t.Fatalf("Steal(2) = %d,cpu%d,%v; want 300,cpu3,true", x, v, ok)
	}
	if _, _, _, ok = r.Steal(0); ok {
		t.Fatalf("Steal on all-empty queues succeeded")
	}
	if r.Steals[0] != 1 || r.Steals[2] != 1 {
		t.Fatalf("steal counters = %v, want one each for CPUs 0 and 2", r.Steals)
	}
}

func TestStealNeverTakesLocal(t *testing.T) {
	r := NewRunQueues[int](2)
	r.Local(0).Enqueue(1, 4)
	if _, _, _, ok := r.Steal(0); ok {
		t.Fatalf("Steal(0) took from its own queue")
	}
	if x, _, v, ok := r.Steal(1); !ok || x != 1 || v != 0 {
		t.Fatalf("Steal(1) = %d,cpu%d,%v; want 1,cpu0,true", x, v, ok)
	}
}

func TestBusiest(t *testing.T) {
	r := NewRunQueues[int](3)
	if cpu, n := r.Busiest(); cpu != -1 || n != 0 {
		t.Fatalf("Busiest on empty = %d,%d; want -1,0", cpu, n)
	}
	r.Local(1).Enqueue(1, 1)
	r.Local(2).Enqueue(2, 1)
	r.Local(2).Enqueue(3, 2)
	if cpu, n := r.Busiest(); cpu != 2 || n != 2 {
		t.Fatalf("Busiest = %d,%d; want 2,2", cpu, n)
	}
}
