package vtime

import "testing"

// Boundary-tick regression tests for the wheel cascade. The wheel files
// entries by the highest differing bit between expiry and the lazy anchor
// wt, so the delicate instants are exactly the level boundaries: expiries
// at wt + 64^k - 1, wt + 64^k, wt + 64^k + 1, and anchors sitting exactly
// on a slot edge. These tests drive the wheel and the heap oracle in
// strict lockstep through arm/cancel/advance sequences pinned to those
// instants — including cancel-then-rearm sequences that recycle the freed
// entry (and its index-page slot) within the same tick — and require
// identical IDs, fire order, fire times, and expiry reports.

// drainCompare pops both clocks dry at their current instants and
// requires identical event streams.
func drainCompare(t *testing.T, tag string, c *Clock, r *refClock) {
	t.Helper()
	for {
		ev, ok := c.PopDue()
		rev, rok := r.PopDue()
		if ok != rok {
			t.Fatalf("%s: PopDue wheel=%v heap=%v", tag, ok, rok)
		}
		if !ok {
			return
		}
		if ev != rev {
			t.Fatalf("%s: event %+v != heap %+v", tag, ev, rev)
		}
	}
}

// expiryCompare requires both clocks to report the same next expiry.
func expiryCompare(t *testing.T, tag string, c *Clock, r *refClock) {
	t.Helper()
	at, ok := c.NextExpiry()
	rat, rok := r.NextExpiry()
	if ok != rok || (ok && at != rat) {
		t.Fatalf("%s: NextExpiry wheel=(%v,%v) heap=(%v,%v)", tag, at, ok, rat, rok)
	}
}

// boundaryOffsets are the distances from an anchor that straddle every
// wheel-level edge the geometry has below ~64^3: the last tick a timer
// still files at level k, the first tick of level k+1, and one past it.
func boundaryOffsets() []Duration {
	var offs []Duration
	for _, edge := range []int64{1 << levelBits, 1 << (2 * levelBits), 1 << (3 * levelBits)} {
		offs = append(offs, Duration(edge-1), Duration(edge), Duration(edge+1))
	}
	return offs
}

// anchorTimes are wt positions to test from: zero, mid-slot, the exact
// slot edges at each level, and one tick either side of those edges.
func anchorTimes() []Time {
	ts := []Time{0, 7}
	for _, edge := range []int64{1 << levelBits, 1 << (2 * levelBits), 1 << (3 * levelBits)} {
		ts = append(ts, Time(edge-1), Time(edge), Time(edge+1))
	}
	return ts
}

// TestWheelBoundaryArmFireOrder arms a cluster of timers straddling each
// level edge from each anchor position and checks the cascade delivers
// them in exactly the heap's (at, seq) order, stepping the clock to each
// expiry precisely (never past it) so every cascade happens on the
// boundary tick itself.
func TestWheelBoundaryArmFireOrder(t *testing.T) {
	for _, anchor := range anchorTimes() {
		c := NewClock()
		r := newRefClock()
		c.AdvanceTo(anchor)
		r.now = anchor
		// Force the wheel anchor wt to the advanced instant: the anchor
		// only moves lazily, inside a cascade.
		expiryCompare(t, "empty", c, r)

		for _, d := range boundaryOffsets() {
			// Two timers per offset: same instant, distinct seq, so the
			// FIFO tiebreak is exercised right on the boundary.
			id := c.ScheduleAfter(d, d)
			rid := r.ScheduleAfter(d, d)
			if id != rid {
				t.Fatalf("anchor %v offset %v: wheel id %d != heap id %d", anchor, d, id, rid)
			}
			c.ScheduleAfter(d, ^int64(d))
			r.ScheduleAfter(d, ^int64(d))
		}
		expiryCompare(t, "armed", c, r)

		// Walk expiry to expiry: stop exactly on every boundary tick.
		for {
			at, ok := c.NextExpiry()
			expiryCompare(t, "walk", c, r)
			if !ok {
				break
			}
			c.AdvanceTo(at)
			r.now = at
			drainCompare(t, "walk", c, r)
		}
		if c.Pending() != 0 || r.Pending() != 0 {
			t.Fatalf("anchor %v: pending wheel=%d heap=%d after walk", anchor, c.Pending(), r.Pending())
		}
	}
}

// TestWheelBoundaryCancelOnTick advances both clocks exactly onto a
// level-boundary expiry and cancels the timer on that very tick — after
// the cascade may already have moved it to the due list — then checks the
// cancel result and the surviving timers' order agree with the heap.
func TestWheelBoundaryCancelOnTick(t *testing.T) {
	for _, anchor := range anchorTimes() {
		for _, d := range boundaryOffsets() {
			c := NewClock()
			r := newRefClock()
			c.AdvanceTo(anchor)
			r.now = anchor

			// The victim sits on the boundary; two bystanders bracket it
			// so the slot lists around the edge stay populated.
			before := c.ScheduleAfter(d-1, "before")
			r.ScheduleAfter(d-1, "before")
			victim := c.ScheduleAfter(d, "victim")
			rvictim := r.ScheduleAfter(d, "victim")
			after := c.ScheduleAfter(d+1, "after")
			r.ScheduleAfter(d+1, "after")
			_ = before
			_ = after
			if victim != rvictim {
				t.Fatalf("anchor %v d %v: id mismatch %d vs %d", anchor, d, victim, rvictim)
			}

			// Land exactly on the victim's expiry tick, forcing the
			// cascade (NextExpiry) first so the victim is already due,
			// then cancel it on that same tick.
			at := anchor.Add(d)
			c.AdvanceTo(at)
			r.now = at
			expiryCompare(t, "on-tick", c, r)
			if got, want := c.Cancel(victim), r.Cancel(rvictim); got != want {
				t.Fatalf("anchor %v d %v: Cancel on boundary tick wheel=%v heap=%v", anchor, d, got, want)
			}
			drainCompare(t, "on-tick", c, r)

			c.AdvanceTo(at.Add(2))
			r.now = at.Add(2)
			drainCompare(t, "tail", c, r)
			if c.Pending() != 0 || r.Pending() != 0 {
				t.Fatalf("anchor %v d %v: pending wheel=%d heap=%d", anchor, d, c.Pending(), r.Pending())
			}
		}
	}
}

// TestWheelCancelRearmRecycledSameTick pins the free-list/index-page
// recycling path: cancel a timer and immediately re-arm at the very same
// instant, within the same tick. The replacement reuses the freed entry
// (and, across a page boundary, the freed index page) but must carry a
// fresh ID and a fresh seq — the rearmed timer fires *after* any
// still-armed peer at the same instant, exactly as the heap orders it.
func TestWheelCancelRearmRecycledSameTick(t *testing.T) {
	for _, anchor := range anchorTimes() {
		for _, d := range boundaryOffsets() {
			c := NewClock()
			r := newRefClock()
			c.AdvanceTo(anchor)
			r.now = anchor
			at := anchor.Add(d)

			// peer is armed first at the instant; a then b recycle a's
			// entry at the same instant on the same (un-advanced) tick.
			peer := c.ScheduleAt(at, "peer")
			r.ScheduleAt(at, "peer")
			a := c.ScheduleAt(at, "a")
			ra := r.ScheduleAt(at, "a")
			if !c.Cancel(a) || !r.Cancel(ra) {
				t.Fatalf("anchor %v d %v: cancel of fresh timer failed", anchor, d)
			}
			b := c.ScheduleAt(at, "b")
			rb := r.ScheduleAt(at, "b")
			if b != rb {
				t.Fatalf("anchor %v d %v: rearm id wheel=%d heap=%d", anchor, d, b, rb)
			}
			if b == a {
				t.Fatalf("anchor %v d %v: rearm reused TimerID %d — IDs must stay monotone", anchor, d, a)
			}
			if c.Pending() != 2 || r.Pending() != 2 {
				t.Fatalf("anchor %v d %v: pending wheel=%d heap=%d", anchor, d, c.Pending(), r.Pending())
			}
			expiryCompare(t, "rearmed", c, r)

			c.AdvanceTo(at)
			r.now = at
			ev1, ok1 := c.PopDue()
			rev1, _ := r.PopDue()
			ev2, ok2 := c.PopDue()
			rev2, _ := r.PopDue()
			if !ok1 || !ok2 {
				t.Fatalf("anchor %v d %v: expected two due events", anchor, d)
			}
			if ev1 != rev1 || ev2 != rev2 {
				t.Fatalf("anchor %v d %v: fire order (%+v,%+v) != heap (%+v,%+v)",
					anchor, d, ev1, ev2, rev1, rev2)
			}
			if ev1.ID != peer || ev2.ID != b {
				t.Fatalf("anchor %v d %v: recycled rearm jumped the FIFO: got %d,%d want %d,%d",
					anchor, d, ev1.ID, ev2.ID, peer, b)
			}
			drainCompare(t, "tail", c, r)
		}
	}
}

// TestWheelCancelRearmOnDueTick is the harsher variant: the clock is
// already standing on the expiry tick when the cancel-then-rearm happens,
// so the recycled entry is re-armed *at the anchor itself* and must land
// on the due list (behind existing due peers), never back in the wheel.
func TestWheelCancelRearmOnDueTick(t *testing.T) {
	for _, anchor := range anchorTimes() {
		for _, d := range boundaryOffsets() {
			c := NewClock()
			r := newRefClock()
			at := anchor.Add(d)

			peer := c.ScheduleAt(at, "peer")
			r.ScheduleAt(at, "peer")
			a := c.ScheduleAt(at, "a")
			ra := r.ScheduleAt(at, "a")

			// Stand exactly on the tick; cascade via NextExpiry so both
			// entries are already due, then recycle a into b in place.
			c.AdvanceTo(at)
			r.now = at
			expiryCompare(t, "due", c, r)
			if !c.Cancel(a) || !r.Cancel(ra) {
				t.Fatalf("anchor %v d %v: cancel of due timer failed", anchor, d)
			}
			b := c.ScheduleAt(at, "b")
			rb := r.ScheduleAt(at, "b")
			if b != rb {
				t.Fatalf("anchor %v d %v: rearm id wheel=%d heap=%d", anchor, d, b, rb)
			}
			expiryCompare(t, "rearmed-due", c, r)

			ev1, ok1 := c.PopDue()
			rev1, _ := r.PopDue()
			ev2, ok2 := c.PopDue()
			rev2, _ := r.PopDue()
			if !ok1 || !ok2 {
				t.Fatalf("anchor %v d %v: expected two due events", anchor, d)
			}
			if ev1 != rev1 || ev2 != rev2 {
				t.Fatalf("anchor %v d %v: due-tick fire order (%+v,%+v) != heap (%+v,%+v)",
					anchor, d, ev1, ev2, rev1, rev2)
			}
			if ev1.ID != peer || ev2.ID != b {
				t.Fatalf("anchor %v d %v: due-tick rearm misordered: got %d,%d want %d,%d",
					anchor, d, ev1.ID, ev2.ID, peer, b)
			}
			drainCompare(t, "tail", c, r)
		}
	}
}
