package vtime

import (
	"fmt"
	"testing"
)

// populate arms n resident background timers, spread over a wide window
// far enough out that no benchmark loop advances into them.
func populate(c *Clock, n int) {
	const base = Duration(1) << 50
	for i := 0; i < n; i++ {
		c.ScheduleAfter(base+Duration(i*7919), nil)
	}
}

// BenchmarkArmCancelLoaded measures arm+cancel cost against a resident
// timer population. The acceptance bar for the wheel is flat ns/op from
// 1k to 100k armed timers (the heap was O(log n) here) at 0 allocs/op.
func BenchmarkArmCancelLoaded(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			c := NewClock()
			populate(c, n)
			// Warm the pool so the measured loop is steady-state.
			c.Cancel(c.ScheduleAfter(100, nil))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := c.ScheduleAfter(100, nil)
				c.Cancel(id)
			}
		})
	}
}

// BenchmarkScheduleFireLoaded measures the full arm/advance/fire cycle
// against a resident population — the quantum-timer pattern of the core
// kernel with n threads asleep.
func BenchmarkScheduleFireLoaded(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			c := NewClock()
			populate(c, n)
			c.Cancel(c.ScheduleAfter(100, nil))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.ScheduleAfter(1, nil)
				c.Advance(1)
				c.PopDue()
			}
			b.StopTimer()
			if c.Pending() != n {
				b.Fatalf("population drifted: %d", c.Pending())
			}
		})
	}
}

// BenchmarkNextExpiryLoaded measures the expiry query against a resident
// population; the memo must keep it O(1) even when the earliest region is
// a populous coarse slot.
func BenchmarkNextExpiryLoaded(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			c := NewClock()
			populate(c, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.NextExpiry()
			}
		})
	}
}

func BenchmarkScheduleCancel(b *testing.B) {
	c := NewClock()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := c.ScheduleAfter(100, nil)
		c.Cancel(id)
	}
}

func BenchmarkSchedulePopDue(b *testing.B) {
	c := NewClock()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ScheduleAfter(1, nil)
		c.Advance(1)
		c.PopDue()
	}
}

func BenchmarkStepNoTimers(b *testing.B) {
	c := NewClock()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(10)
	}
}

func BenchmarkStepWithFarTimer(b *testing.B) {
	c := NewClock()
	c.ScheduleAt(Infinity-1, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(10)
	}
}
