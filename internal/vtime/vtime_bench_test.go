package vtime

import "testing"

func BenchmarkScheduleCancel(b *testing.B) {
	c := NewClock()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := c.ScheduleAfter(100, nil)
		c.Cancel(id)
	}
}

func BenchmarkSchedulePopDue(b *testing.B) {
	c := NewClock()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ScheduleAfter(1, nil)
		c.Advance(1)
		c.PopDue()
	}
}

func BenchmarkStepNoTimers(b *testing.B) {
	c := NewClock()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(10)
	}
}

func BenchmarkStepWithFarTimer(b *testing.B) {
	c := NewClock()
	c.ScheduleAt(Infinity-1, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(10)
	}
}
