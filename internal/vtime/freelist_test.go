package vtime

import "testing"

// The unpooled reference model (refClock) lives in refheap_test.go: it is
// the library's original container/heap timer queue, kept test-only. The
// storm test below drives the pooled wheel Clock and this model in
// lockstep and requires identical due-order, proving neither the free
// list nor the wheel changes anything observable.

// xorshift is a tiny deterministic PRNG so the storm is reproducible
// without math/rand seeding ceremony.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// TestFreeListStormMatchesUnpooledHeap drives an arm/cancel/fire storm
// with interleaved cancels through the pooled Clock and the unpooled
// reference model and asserts the due-order (ID, At, Payload) is
// identical event for event.
func TestFreeListStormMatchesUnpooledHeap(t *testing.T) {
	c := NewClock()
	r := newRefClock()
	rng := xorshift(0x9e3779b97f4a7c15)

	var live []TimerID // IDs armed and not yet cancelled (may have fired)
	for round := 0; round < 5000; round++ {
		switch rng.next() % 4 {
		case 0, 1: // arm
			d := Duration(rng.next() % 500)
			id := c.ScheduleAfter(d, int(round))
			rid := r.ScheduleAt(r.now.Add(d), int(round))
			if id != rid {
				t.Fatalf("round %d: pooled id %d != reference id %d", round, id, rid)
			}
			live = append(live, id)
		case 2: // cancel a random earlier timer (possibly already fired)
			if len(live) == 0 {
				continue
			}
			id := live[rng.next()%uint64(len(live))]
			if got, want := c.Cancel(id), r.Cancel(id); got != want {
				t.Fatalf("round %d: Cancel(%d) pooled=%v reference=%v", round, id, got, want)
			}
		case 3: // advance and drain due events
			d := Duration(rng.next() % 200)
			c.Advance(d)
			r.now = r.now.Add(d)
			for {
				ev, ok := c.PopDue()
				rev, rok := r.PopDue()
				if ok != rok {
					t.Fatalf("round %d: PopDue pooled=%v reference=%v", round, ok, rok)
				}
				if !ok {
					break
				}
				if ev != rev {
					t.Fatalf("round %d: event %+v != reference %+v", round, ev, rev)
				}
			}
		}
	}
	if c.Pending() != len(r.entries) {
		t.Fatalf("pending mismatch: pooled %d, reference %d", c.Pending(), len(r.entries))
	}
}

// TestFreeListSteadyStateZeroAlloc warms the pool, then asserts that an
// arm/cancel/fire mix allocates nothing: every entry the storm needs is
// served from the free list.
func TestFreeListSteadyStateZeroAlloc(t *testing.T) {
	c := NewClock()
	// Warm-up: populate the free list with enough recycled entries to
	// cover the steady-state working set.
	for i := 0; i < 64; i++ {
		c.ScheduleAfter(1, nil)
	}
	c.Advance(1)
	for {
		if _, ok := c.PopDue(); !ok {
			break
		}
	}

	avg := testing.AllocsPerRun(200, func() {
		// Arm three, cancel one mid-heap, fire the rest.
		a := c.ScheduleAfter(10, nil)
		b := c.ScheduleAfter(20, nil)
		c.ScheduleAfter(30, nil)
		_ = a
		c.Cancel(b)
		c.Advance(40)
		for {
			if _, ok := c.PopDue(); !ok {
				break
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state arm/cancel/fire allocates %v allocs/op, want 0", avg)
	}
}

// TestFreeListRecyclesCancelled checks that a cancelled entry is
// recycled into the pool immediately — no scrub or query needed — and
// reused by a later ScheduleAt rather than leaked.
func TestFreeListRecyclesCancelled(t *testing.T) {
	c := NewClock()
	id := c.ScheduleAfter(5, "x")
	c.Cancel(id)
	if c.freeLen != 1 {
		t.Fatalf("free list has %d entries after cancel, want 1", c.freeLen)
	}
	if c.free.payload != nil {
		t.Fatal("recycled entry still pins its payload")
	}
	if _, ok := c.NextExpiry(); ok {
		t.Fatal("cancelled timer still reported by NextExpiry")
	}
	c.ScheduleAfter(5, "y")
	if c.freeLen != 0 {
		t.Fatal("ScheduleAt did not reuse the free-list entry")
	}
}
