package vtime

import (
	"container/heap"
	"testing"
)

// refClock is an intentionally unpooled reference model of the timer
// queue: same heap ordering (at, then seq), same tombstone Cancel, but
// every ScheduleAt allocates a fresh entry. The storm test below drives
// the pooled Clock and this model in lockstep and requires identical
// due-order, proving the free list changes nothing observable.
type refClock struct {
	now     Time
	heap    timerHeap
	entries map[TimerID]*timerEntry
	nextID  TimerID
	nextSeq int64
}

func newRefClock() *refClock {
	return &refClock{entries: make(map[TimerID]*timerEntry)}
}

func (c *refClock) ScheduleAt(at Time, payload any) TimerID {
	c.nextID++
	c.nextSeq++
	e := &timerEntry{id: c.nextID, at: at, seq: c.nextSeq, payload: payload}
	c.entries[e.id] = e
	heap.Push(&c.heap, e)
	return e.id
}

func (c *refClock) Cancel(id TimerID) bool {
	e, ok := c.entries[id]
	if !ok || e.dead {
		return false
	}
	e.dead = true
	delete(c.entries, id)
	return true
}

func (c *refClock) PopDue() (Event, bool) {
	for len(c.heap) > 0 && c.heap[0].dead {
		heap.Pop(&c.heap)
	}
	if len(c.heap) == 0 || c.heap[0].at > c.now {
		return Event{}, false
	}
	e := heap.Pop(&c.heap).(*timerEntry)
	delete(c.entries, e.id)
	return Event{ID: e.id, At: e.at, Payload: e.payload}, true
}

// xorshift is a tiny deterministic PRNG so the storm is reproducible
// without math/rand seeding ceremony.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// TestFreeListStormMatchesUnpooledHeap drives an arm/cancel/fire storm
// with interleaved cancels through the pooled Clock and the unpooled
// reference model and asserts the due-order (ID, At, Payload) is
// identical event for event.
func TestFreeListStormMatchesUnpooledHeap(t *testing.T) {
	c := NewClock()
	r := newRefClock()
	rng := xorshift(0x9e3779b97f4a7c15)

	var live []TimerID // IDs armed and not yet cancelled (may have fired)
	for round := 0; round < 5000; round++ {
		switch rng.next() % 4 {
		case 0, 1: // arm
			d := Duration(rng.next() % 500)
			id := c.ScheduleAfter(d, int(round))
			rid := r.ScheduleAt(r.now.Add(d), int(round))
			if id != rid {
				t.Fatalf("round %d: pooled id %d != reference id %d", round, id, rid)
			}
			live = append(live, id)
		case 2: // cancel a random earlier timer (possibly already fired)
			if len(live) == 0 {
				continue
			}
			id := live[rng.next()%uint64(len(live))]
			if got, want := c.Cancel(id), r.Cancel(id); got != want {
				t.Fatalf("round %d: Cancel(%d) pooled=%v reference=%v", round, id, got, want)
			}
		case 3: // advance and drain due events
			d := Duration(rng.next() % 200)
			c.Advance(d)
			r.now = r.now.Add(d)
			for {
				ev, ok := c.PopDue()
				rev, rok := r.PopDue()
				if ok != rok {
					t.Fatalf("round %d: PopDue pooled=%v reference=%v", round, ok, rok)
				}
				if !ok {
					break
				}
				if ev != rev {
					t.Fatalf("round %d: event %+v != reference %+v", round, ev, rev)
				}
			}
		}
	}
	if c.Pending() != len(r.entries) {
		t.Fatalf("pending mismatch: pooled %d, reference %d", c.Pending(), len(r.entries))
	}
}

// TestFreeListSteadyStateZeroAlloc warms the pool, then asserts that an
// arm/cancel/fire mix allocates nothing: every entry the storm needs is
// served from the free list.
func TestFreeListSteadyStateZeroAlloc(t *testing.T) {
	c := NewClock()
	// Warm-up: populate the free list with enough recycled entries to
	// cover the steady-state working set.
	for i := 0; i < 64; i++ {
		c.ScheduleAfter(1, nil)
	}
	c.Advance(1)
	for {
		if _, ok := c.PopDue(); !ok {
			break
		}
	}

	avg := testing.AllocsPerRun(200, func() {
		// Arm three, cancel one mid-heap, fire the rest.
		a := c.ScheduleAfter(10, nil)
		b := c.ScheduleAfter(20, nil)
		c.ScheduleAfter(30, nil)
		_ = a
		c.Cancel(b)
		c.Advance(40)
		for {
			if _, ok := c.PopDue(); !ok {
				break
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state arm/cancel/fire allocates %v allocs/op, want 0", avg)
	}
}

// TestFreeListRecyclesCancelled checks that a cancelled entry scrubbed
// off the heap head is reused by a later ScheduleAt rather than leaked.
func TestFreeListRecyclesCancelled(t *testing.T) {
	c := NewClock()
	id := c.ScheduleAfter(5, "x")
	c.Cancel(id)
	if _, ok := c.NextExpiry(); ok { // scrubs the tombstone into the pool
		t.Fatal("cancelled timer still reported by NextExpiry")
	}
	if len(c.free) != 1 {
		t.Fatalf("free list has %d entries after scrub, want 1", len(c.free))
	}
	if c.free[0].payload != nil {
		t.Fatal("recycled entry still pins its payload")
	}
	c.ScheduleAfter(5, "y")
	if len(c.free) != 0 {
		t.Fatal("ScheduleAt did not reuse the free-list entry")
	}
}
