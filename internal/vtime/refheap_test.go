package vtime

import "container/heap"

// This file keeps the library's original container/heap timer queue as a
// test-only reference implementation. The production Clock is now a
// hierarchical timer wheel; the property tests in wheel_test.go and the
// storm test in freelist_test.go drive both structures in lockstep and
// require identical observable behavior — IDs, fire order, fire times,
// expiry reports — on randomized arm/cancel/advance sequences.

type refEntry struct {
	id      TimerID
	at      Time
	seq     int64
	payload any
	index   int
	dead    bool
}

type refHeap []*refEntry

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	e := x.(*refEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// refClock is the binary-heap reference model: same (at, seq) ordering,
// tombstone Cancel with head scrub, unpooled entries.
type refClock struct {
	now     Time
	heap    refHeap
	entries map[TimerID]*refEntry
	nextID  TimerID
	nextSeq int64
}

func newRefClock() *refClock {
	return &refClock{entries: make(map[TimerID]*refEntry)}
}

func (c *refClock) Now() Time { return c.now }

func (c *refClock) ScheduleAt(at Time, payload any) TimerID {
	c.nextID++
	c.nextSeq++
	e := &refEntry{id: c.nextID, at: at, seq: c.nextSeq, payload: payload}
	c.entries[e.id] = e
	heap.Push(&c.heap, e)
	return e.id
}

func (c *refClock) ScheduleAfter(d Duration, payload any) TimerID {
	return c.ScheduleAt(c.now.Add(d), payload)
}

func (c *refClock) Cancel(id TimerID) bool {
	e, ok := c.entries[id]
	if !ok || e.dead {
		return false
	}
	e.dead = true
	e.payload = nil
	delete(c.entries, id)
	return true
}

func (c *refClock) Pending() int { return len(c.entries) }

func (c *refClock) scrub() {
	for len(c.heap) > 0 && c.heap[0].dead {
		heap.Pop(&c.heap)
	}
}

func (c *refClock) NextExpiry() (Time, bool) {
	c.scrub()
	if len(c.heap) == 0 {
		return 0, false
	}
	return c.heap[0].at, true
}

func (c *refClock) PopDue() (Event, bool) {
	c.scrub()
	if len(c.heap) == 0 || c.heap[0].at > c.now {
		return Event{}, false
	}
	e := heap.Pop(&c.heap).(*refEntry)
	delete(c.entries, e.id)
	return Event{ID: e.id, At: e.at, Payload: e.payload}, true
}

func (c *refClock) Advance(d Duration) { c.now = c.now.Add(d) }

func (c *refClock) Step(d Duration) (advanced Duration, due bool) {
	target := c.now.Add(d)
	if at, ok := c.NextExpiry(); ok && at <= target {
		if at < c.now {
			return 0, true
		}
		advanced = at.Sub(c.now)
		c.now = at
		return advanced, true
	}
	c.now = target
	return d, false
}
