package vtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
}

func TestAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(5 * Microsecond)
	if c.Now() != Time(5*Microsecond) {
		t.Fatalf("Now = %v", c.Now())
	}
	c.AdvanceTo(Time(10 * Microsecond))
	if c.Now() != Time(10*Microsecond) {
		t.Fatalf("Now = %v", c.Now())
	}
}

func TestAdvanceBackwardsPanics(t *testing.T) {
	c := NewClock()
	c.Advance(Microsecond)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on backwards advance")
		}
	}()
	c.AdvanceTo(0)
}

func TestNegativeAdvancePanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative advance")
		}
	}()
	c.Advance(-1)
}

func TestScheduleAndPop(t *testing.T) {
	c := NewClock()
	id := c.ScheduleAfter(10, "a")
	if id == 0 {
		t.Fatal("zero TimerID")
	}
	if _, ok := c.PopDue(); ok {
		t.Fatal("event due before its time")
	}
	c.Advance(10)
	ev, ok := c.PopDue()
	if !ok || ev.Payload != "a" || ev.At != 10 {
		t.Fatalf("PopDue = %+v, %v", ev, ok)
	}
	if _, ok := c.PopDue(); ok {
		t.Fatal("event popped twice")
	}
}

func TestPopOrderByTimeThenFIFO(t *testing.T) {
	c := NewClock()
	c.ScheduleAt(20, "late")
	c.ScheduleAt(10, "early1")
	c.ScheduleAt(10, "early2")
	c.AdvanceTo(30)
	var got []string
	for {
		ev, ok := c.PopDue()
		if !ok {
			break
		}
		got = append(got, ev.Payload.(string))
	}
	want := []string{"early1", "early2", "late"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestCancel(t *testing.T) {
	c := NewClock()
	id := c.ScheduleAfter(5, "x")
	if !c.Cancel(id) {
		t.Fatal("Cancel returned false for armed timer")
	}
	if c.Cancel(id) {
		t.Fatal("Cancel returned true twice")
	}
	c.Advance(10)
	if _, ok := c.PopDue(); ok {
		t.Fatal("cancelled timer fired")
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d", c.Pending())
	}
}

func TestCancelHeadThenNextExpiry(t *testing.T) {
	c := NewClock()
	id := c.ScheduleAfter(5, "head")
	c.ScheduleAfter(7, "next")
	c.Cancel(id)
	at, ok := c.NextExpiry()
	if !ok || at != 7 {
		t.Fatalf("NextExpiry = %v, %v; want 7", at, ok)
	}
}

func TestStepStopsAtTimer(t *testing.T) {
	c := NewClock()
	c.ScheduleAfter(4, "t")
	adv, due := c.Step(10)
	if adv != 4 || !due {
		t.Fatalf("Step = %v, %v; want 4, true", adv, due)
	}
	if c.Now() != 4 {
		t.Fatalf("Now = %v", c.Now())
	}
	// A second step must not re-trigger: pop the event first.
	c.PopDue()
	adv, due = c.Step(10)
	if adv != 10 || due {
		t.Fatalf("Step = %v, %v; want 10, false", adv, due)
	}
}

func TestStepWithOverdueTimer(t *testing.T) {
	c := NewClock()
	c.ScheduleAt(0, "now")
	adv, due := c.Step(5)
	if adv != 0 || !due {
		t.Fatalf("Step = %v, %v; want 0, true", adv, due)
	}
}

func TestStepFullWhenNoTimers(t *testing.T) {
	c := NewClock()
	adv, due := c.Step(100)
	if adv != 100 || due {
		t.Fatalf("Step = %v, %v", adv, due)
	}
}

func TestNextExpiryEmpty(t *testing.T) {
	c := NewClock()
	if _, ok := c.NextExpiry(); ok {
		t.Fatal("expiry on empty clock")
	}
}

func TestTimeFormatting(t *testing.T) {
	if got := Time(1500).String(); got != "1.50µs" {
		t.Fatalf("String = %q", got)
	}
	if got := Duration(2 * Millisecond).String(); got != "2000.00µs" {
		t.Fatalf("String = %q", got)
	}
	if got := Duration(25 * Millisecond).String(); got != "25.00ms" {
		t.Fatalf("String = %q", got)
	}
	if got := Time(12 * int64(Second)).String(); got != "12.00s" {
		t.Fatalf("String = %q", got)
	}
	if got := Duration(-1500).String(); got != "-1.50µs" {
		t.Fatalf("String = %q", got)
	}
	if Time(3000).Micros() != 3.0 {
		t.Fatal("Micros wrong")
	}
}

func TestAddSub(t *testing.T) {
	a := Time(100)
	b := a.Add(50)
	if b != 150 || b.Sub(a) != 50 {
		t.Fatalf("Add/Sub: %v %v", b, b.Sub(a))
	}
}

// Property: popping all events after advancing past every expiry yields
// them sorted by (time, insertion order).
func TestPopOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		c := NewClock()
		type item struct {
			at  Time
			seq int
		}
		var want []item
		for i, r := range raw {
			at := Time(r)
			c.ScheduleAt(at, i)
			want = append(want, item{at, i})
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		c.AdvanceTo(Time(1 << 20))
		for _, w := range want {
			ev, ok := c.PopDue()
			if !ok || ev.Payload.(int) != w.seq {
				return false
			}
		}
		_, ok := c.PopDue()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset removes exactly that subset.
func TestCancelSubsetProperty(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		c := NewClock()
		rng := rand.New(rand.NewSource(seed))
		ids := map[TimerID]bool{} // id -> cancelled
		for i := 0; i < int(n); i++ {
			id := c.ScheduleAfter(Duration(rng.Intn(100)), i)
			ids[id] = rng.Intn(2) == 0
		}
		for id, cancel := range ids {
			if cancel && !c.Cancel(id) {
				return false
			}
		}
		c.AdvanceTo(Time(1000))
		survived := 0
		for {
			_, ok := c.PopDue()
			if !ok {
				break
			}
			survived++
		}
		wantSurvive := 0
		for _, cancelled := range ids {
			if !cancelled {
				wantSurvive++
			}
		}
		return survived == wantSurvive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Step never moves past the next expiry and never backwards.
func TestStepBoundedProperty(t *testing.T) {
	f := func(steps []uint8, timer uint8) bool {
		c := NewClock()
		c.ScheduleAfter(Duration(timer), "t")
		for _, st := range steps {
			before := c.Now()
			adv, due := c.Step(Duration(st))
			if adv < 0 || c.Now() != before.Add(adv) {
				return false
			}
			if due && c.Now() > Time(timer) {
				return false
			}
			if due {
				c.PopDue()
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
