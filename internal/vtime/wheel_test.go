package vtime

import (
	"math/rand"
	"testing"
)

// TestWheelMatchesHeapProperty cross-checks the hierarchical timer wheel
// against the original binary-heap implementation (refheap_test.go) on
// randomized arm/cancel/advance sequences. Durations are drawn from an
// exponential-ish range so entries land on every wheel level — from
// single-tick level-0 slots to multi-second coarse slots that must
// cascade — and both fire order and fire times must match exactly,
// as must every intermediate NextExpiry report.
func TestWheelMatchesHeapProperty(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := NewClock()
		r := newRefClock()
		var live []TimerID

		for round := 0; round < 3000; round++ {
			switch rng.Intn(5) {
			case 0, 1: // arm, spanning many wheel levels
				mag := uint(rng.Intn(36)) // up to ~64 s spans
				d := Duration(rng.Int63n(1 << mag))
				id := c.ScheduleAfter(d, round)
				rid := r.ScheduleAfter(d, round)
				if id != rid {
					t.Fatalf("seed %d round %d: wheel id %d != heap id %d", seed, round, id, rid)
				}
				live = append(live, id)
			case 2: // cancel a random earlier timer (possibly already fired)
				if len(live) == 0 {
					continue
				}
				id := live[rng.Intn(len(live))]
				if got, want := c.Cancel(id), r.Cancel(id); got != want {
					t.Fatalf("seed %d round %d: Cancel(%d) wheel=%v heap=%v", seed, round, id, got, want)
				}
			case 3: // advance and drain due events
				d := Duration(rng.Int63n(1 << uint(rng.Intn(34))))
				c.Advance(d)
				r.Advance(d)
				for {
					pev, pok := c.PeekDue()
					ev, ok := c.PopDue()
					rev, rok := r.PopDue()
					if ok != rok {
						t.Fatalf("seed %d round %d: PopDue wheel=%v heap=%v", seed, round, ok, rok)
					}
					if pok != ok || (ok && pev != ev) {
						t.Fatalf("seed %d round %d: PeekDue (%+v,%v) != PopDue (%+v,%v)", seed, round, pev, pok, ev, ok)
					}
					if !ok {
						break
					}
					if ev != rev {
						t.Fatalf("seed %d round %d: event %+v != heap %+v", seed, round, ev, rev)
					}
				}
			case 4: // expiry report must agree at every moment
				at, ok := c.NextExpiry()
				rat, rok := r.NextExpiry()
				if ok != rok || (ok && at != rat) {
					t.Fatalf("seed %d round %d: NextExpiry wheel=(%v,%v) heap=(%v,%v)", seed, round, at, ok, rat, rok)
				}
			}
		}
		// Drain both completely and compare the tail.
		c.AdvanceTo(Infinity)
		r.now = Infinity
		for {
			ev, ok := c.PopDue()
			rev, rok := r.PopDue()
			if ok != rok {
				t.Fatalf("seed %d drain: PopDue wheel=%v heap=%v", seed, ok, rok)
			}
			if !ok {
				break
			}
			if ev != rev {
				t.Fatalf("seed %d drain: event %+v != heap %+v", seed, ev, rev)
			}
		}
		if c.Pending() != 0 || r.Pending() != 0 {
			t.Fatalf("seed %d: pending wheel=%d heap=%d after full drain", seed, c.Pending(), r.Pending())
		}
	}
}

// TestWheelStepMatchesHeap runs randomized Step sequences against the
// reference model: the wheel's Step must stop at bit-identical instants
// and report the same due flag, since the core kernel's Compute path and
// idle loop depend on exact expiry times for determinism.
func TestWheelStepMatchesHeap(t *testing.T) {
	c := NewClock()
	r := newRefClock()
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 5000; round++ {
		if rng.Intn(3) == 0 {
			d := Duration(rng.Int63n(1 << uint(rng.Intn(30))))
			c.ScheduleAfter(d, round)
			r.ScheduleAfter(d, round)
		}
		d := Duration(rng.Int63n(1 << uint(rng.Intn(24))))
		adv, due := c.Step(d)
		radv, rdue := r.Step(d)
		if adv != radv || due != rdue {
			t.Fatalf("round %d: Step(%d) wheel=(%v,%v) heap=(%v,%v)", round, d, adv, due, radv, rdue)
		}
		if c.Now() != r.Now() {
			t.Fatalf("round %d: Now wheel=%v heap=%v", round, c.Now(), r.Now())
		}
		if due {
			ev, ok := c.PopDue()
			rev, rok := r.PopDue()
			if ok != rok || ev != rev {
				t.Fatalf("round %d: pop wheel=(%+v,%v) heap=(%+v,%v)", round, ev, ok, rev, rok)
			}
		}
	}
}

// TestCancelStormBoundedEntries is the satellite regression test: arming
// and cancelling one million timers (the timed-wait-always-succeeds
// pattern) must not grow the live entry population — every cancel
// recycles its entry on the spot, so the pool stays at the working-set
// size instead of accumulating a million tombstones.
func TestCancelStormBoundedEntries(t *testing.T) {
	c := NewClock()
	const storm = 1_000_000
	const resident = 32 // armed timers kept live across the storm
	var held []TimerID
	for i := 0; i < resident; i++ {
		held = append(held, c.ScheduleAfter(Duration(1_000_000+i), nil))
	}
	for i := 0; i < storm; i++ {
		id := c.ScheduleAfter(Duration(1+i%1000), nil)
		if !c.Cancel(id) {
			t.Fatalf("timer %d vanished before cancel", i)
		}
		if i%1024 == 0 {
			c.Advance(1) // keep the wheel anchor moving across slots
		}
	}
	if got := c.liveLen; got > resident+8 {
		t.Fatalf("1M arm/cancel storm allocated %d live entries, want <= %d", got, resident+8)
	}
	if got := c.Pending(); got != resident {
		t.Fatalf("Pending = %d after storm, want %d", got, resident)
	}
	for _, id := range held {
		if !c.Cancel(id) {
			t.Fatal("resident timer lost")
		}
	}
	if got := c.freeLen; got > resident+8 {
		t.Fatalf("free list holds %d entries, want <= %d", got, resident+8)
	}
}

// TestWheelFarFutureAndInfinity pins the coarse-slot paths: an Infinity
// sentinel (level 10) must never surface, and exact expiries must be
// reported for far-future timers without advancing the clock.
func TestWheelFarFutureAndInfinity(t *testing.T) {
	c := NewClock()
	c.ScheduleAt(Infinity, "sentinel")
	far := Time(3_600_000_000_000) // one hour
	c.ScheduleAt(far, "hour")
	if at, ok := c.NextExpiry(); !ok || at != far {
		t.Fatalf("NextExpiry = %v, %v; want %v", at, ok, far)
	}
	c.ScheduleAt(far-1, "earlier")
	if at, ok := c.NextExpiry(); !ok || at != far-1 {
		t.Fatalf("NextExpiry after earlier arm = %v, %v; want %v", at, ok, far-1)
	}
	c.AdvanceTo(far)
	ev, ok := c.PopDue()
	if !ok || ev.Payload != "earlier" || ev.At != far-1 {
		t.Fatalf("PopDue = %+v, %v", ev, ok)
	}
	ev, ok = c.PopDue()
	if !ok || ev.Payload != "hour" || ev.At != far {
		t.Fatalf("PopDue = %+v, %v", ev, ok)
	}
	if _, ok := c.PopDue(); ok {
		t.Fatal("Infinity sentinel fired")
	}
	if at, ok := c.NextExpiry(); !ok || at != Infinity {
		t.Fatalf("NextExpiry = %v, %v; want Infinity", at, ok)
	}
}
