package vtime

// Multi-clock coordination. A single simulated host owns its clock
// outright: Advance/AdvanceTo/Step move `now` immediately. When several
// hosts (each with its own Clock) share one causally-consistent virtual
// timeline — the fabric's virtual datacenter — each clock must ask a
// central authority before crossing the frontier up to which it has been
// proven safe to run. The Governor is that authority.
//
// The protocol is a conservative parallel-DES lease: the governor hands
// each clock a *lease* — a timestamp below which the clock may free-run
// without asking again, because every other host's clock plus the
// minimum cross-host event latency lies at or beyond it. The clock
// caches the lease, so the steady-state cost of governance on a host
// that is behind its peers is one comparison per advance. With no
// governor attached (every single-host run), all three advance paths
// take their original branches untouched: byte-identical behavior.
//
// Grant may return less than asked (a partial grant — the caller loops,
// re-checking its timer queue for events other hosts landed while it
// was parked) or more than asked (a pause jump — the fabric froze the
// host for a fault window, so the pending charge completes late by the
// width of the window).

// Governor arbitrates clock advancement across hosts. Grant is called
// with the clock's current time and the target it wants to reach, and
// returns how far it may actually move (grant, always > now) together
// with a new lease (always >= grant) below which future advances need
// no further permission. Implementations block the calling goroutine
// until the advance is safe — that is the mechanism by which only one
// host runs at a time.
type Governor interface {
	Grant(now, want Time) (grant, lease Time)
}

// SetGovernor attaches (or, with nil, detaches) a governor. The lease
// resets to the current instant, so the very next advance beyond `now`
// asks for permission.
func (c *Clock) SetGovernor(g Governor) {
	c.gov = g
	c.lease = c.now
}

// advanceGov completes a charge to target t under a governor. Charges
// model committed work (instruction costs): they never stop early at
// timer expiries, so the loop only ends at t — or beyond it, when a
// pause jump carries the completion past the target.
func (c *Clock) advanceGov(t Time) {
	for c.now < t {
		if t <= c.lease {
			c.now = t
			return
		}
		g, l := c.gov.Grant(c.now, t)
		if g <= c.now || l < g {
			panic("vtime: governor grant out of order")
		}
		c.lease = l
		c.now = g
		if g >= t {
			return
		}
	}
}

// advanceToGov idles the clock toward t under a governor. Unlike a
// charge, the idle path is truncatable: if another host lands an event
// earlier than t while this clock is parked, the advance stops at the
// arrival so the host can process it. t may be Infinity ("sleep until
// anything arrives").
func (c *Clock) advanceToGov(t Time) {
	for c.now < t {
		limit := t
		if at, ok := c.NextExpiry(); ok {
			if at <= c.now {
				return // a newly-landed event is already due
			}
			if at < limit {
				limit = at
			}
		}
		if limit <= c.lease {
			c.now = limit
			return
		}
		g, l := c.gov.Grant(c.now, limit)
		if g <= c.now || l < g {
			panic("vtime: governor grant out of order")
		}
		c.lease = l
		c.now = g
		if g >= limit {
			return
		}
	}
}

// stepGov is the governed Step: like the ungoverned one it stops at the
// next timer expiry, but it may also advance past the target under a
// pause jump (the caller observes advanced > d and treats the excess as
// inflated computation time).
func (c *Clock) stepGov(d Duration) (advanced Duration, due bool) {
	start := c.now
	target := c.now.Add(d)
	for {
		if c.now >= target {
			return c.now.Sub(start), false
		}
		limit := target
		stopDue := false
		if at, ok := c.NextExpiry(); ok {
			if at <= c.now {
				return c.now.Sub(start), true
			}
			if at <= limit {
				limit = at
				stopDue = true
			}
		}
		if limit <= c.lease {
			c.now = limit
			return c.now.Sub(start), stopDue
		}
		g, l := c.gov.Grant(c.now, limit)
		if g <= c.now || l < g {
			panic("vtime: governor grant out of order")
		}
		c.lease = l
		c.now = g
		if g >= limit {
			return c.now.Sub(start), stopDue
		}
	}
}
