// Package vtime provides the deterministic virtual clock that drives the
// simulated uniprocessor on which the Pthreads library runs.
//
// All latencies reported by the library and its benchmark harness are
// expressed in virtual nanoseconds. Time advances only when the machine
// model charges cost for executed work or when the system idles forward to
// the next pending timer event. This makes every run of a program — and in
// particular every benchmark and every perverted-scheduling debug run —
// exactly reproducible, which is one of the paper's stated goals for its
// debugging policies.
package vtime

import (
	"container/heap"
	"fmt"
)

// Time is an absolute virtual timestamp in nanoseconds since system start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Infinity is a timestamp later than any event the simulator will produce.
const Infinity Time = 1<<63 - 1

// Add returns the timestamp d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Micros returns the time as a floating-point count of microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// String renders the timestamp in microseconds (the unit of the paper's
// evaluation) below ten milliseconds, and in milliseconds above.
func (t Time) String() string { return fmtNS(int64(t)) }

// Micros returns the duration as a floating-point count of microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// String renders the duration like Time.String.
func (d Duration) String() string { return fmtNS(int64(d)) }

// fmtNS renders nanoseconds adaptively: µs below 10ms, ms below 10s,
// seconds above.
func fmtNS(ns int64) string {
	f := float64(ns)
	switch {
	case f < 0:
		return "-" + fmtNS(-ns)
	case f < 1e7:
		return fmt.Sprintf("%.2fµs", f/1e3)
	case f < 1e10:
		return fmt.Sprintf("%.2fms", f/1e6)
	default:
		return fmt.Sprintf("%.2fs", f/1e9)
	}
}

// TimerID names a scheduled timer event. The zero value is never a valid
// timer.
type TimerID int64

// Event is a timer event that has come due.
type Event struct {
	ID      TimerID
	At      Time // the scheduled expiry (<= clock.Now() when popped)
	Payload any
}

type timerEntry struct {
	id      TimerID
	at      Time
	seq     int64 // tiebreaker: FIFO among events at the same instant
	payload any
	index   int // heap index, -1 once removed
	dead    bool
}

type timerHeap []*timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	e := x.(*timerEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Clock is the virtual clock: a monotone timestamp plus a deterministic
// timer queue. Clock is not safe for concurrent use; in this system it is
// only ever touched by the single running thread, which is exactly the
// uniprocessor discipline the paper's monolithic monitor assumes.
type Clock struct {
	now     Time
	heap    timerHeap
	entries map[TimerID]*timerEntry
	nextID  TimerID
	nextSeq int64
	// free is the timerEntry free list. Entries are recycled when they
	// leave the heap (fired via PopDue, or scrubbed after a Cancel), so a
	// steady-state arm/cancel/fire workload allocates nothing. The list
	// needs no lock: the clock is only ever touched by the single running
	// thread (uniprocessor discipline).
	free []*timerEntry
}

// NewClock returns a clock at time zero with no timers armed.
func NewClock() *Clock {
	return &Clock{entries: make(map[TimerID]*timerEntry)}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// ScheduleAt arms a timer that comes due at the absolute time at. Timers
// scheduled for the past come due immediately (on the next poll). The
// payload is handed back verbatim inside the popped Event.
func (c *Clock) ScheduleAt(at Time, payload any) TimerID {
	c.nextID++
	c.nextSeq++
	var e *timerEntry
	if n := len(c.free); n > 0 {
		e = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		*e = timerEntry{id: c.nextID, at: at, seq: c.nextSeq, payload: payload}
	} else {
		e = &timerEntry{id: c.nextID, at: at, seq: c.nextSeq, payload: payload}
	}
	c.entries[e.id] = e
	heap.Push(&c.heap, e)
	return e.id
}

// recycle returns an entry that has left the heap to the free list. The
// payload reference is dropped so the pool does not pin user data.
func (c *Clock) recycle(e *timerEntry) {
	e.payload = nil
	c.free = append(c.free, e)
}

// ScheduleAfter arms a timer d from now.
func (c *Clock) ScheduleAfter(d Duration, payload any) TimerID {
	return c.ScheduleAt(c.now.Add(d), payload)
}

// Cancel disarms the timer. It reports whether the timer was still armed.
func (c *Clock) Cancel(id TimerID) bool {
	_, ok := c.CancelTake(id)
	return ok
}

// CancelTake disarms the timer and hands its payload back to the caller,
// so callers that pool their payloads can reclaim them immediately
// instead of waiting for the tombstoned entry to be scrubbed. The entry
// drops the payload reference at once; the entry itself is recycled when
// scrub reaches it.
func (c *Clock) CancelTake(id TimerID) (any, bool) {
	e, ok := c.entries[id]
	if !ok || e.dead {
		return nil, false
	}
	e.dead = true
	pl := e.payload
	e.payload = nil
	delete(c.entries, id)
	// Scrub eagerly so an arm/cancel storm recycles its entries instead
	// of growing the heap with tombstones until the next query.
	c.scrub()
	return pl, true
}

// Pending reports the number of armed timers.
func (c *Clock) Pending() int { return len(c.entries) }

// NextExpiry returns the expiry of the earliest armed timer.
func (c *Clock) NextExpiry() (Time, bool) {
	c.scrub()
	if len(c.heap) == 0 {
		return 0, false
	}
	return c.heap[0].at, true
}

// scrub discards cancelled entries from the head of the heap, returning
// them to the free list.
func (c *Clock) scrub() {
	for len(c.heap) > 0 && c.heap[0].dead {
		c.recycle(heap.Pop(&c.heap).(*timerEntry))
	}
}

// PopDue removes and returns the earliest timer whose expiry is at or
// before the current time. Events at the same instant pop in the order
// they were scheduled.
func (c *Clock) PopDue() (Event, bool) {
	c.scrub()
	if len(c.heap) == 0 || c.heap[0].at > c.now {
		return Event{}, false
	}
	e := heap.Pop(&c.heap).(*timerEntry)
	delete(c.entries, e.id)
	ev := Event{ID: e.id, At: e.at, Payload: e.payload}
	c.recycle(e)
	return ev, true
}

// AdvanceTo moves the clock forward to t. Moving backwards panics: the
// simulation is strictly monotone.
func (c *Clock) AdvanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("vtime: clock moved backwards: %v -> %v", c.now, t))
	}
	c.now = t
}

// Advance moves the clock forward by d.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic("vtime: negative advance")
	}
	c.now = c.now.Add(d)
}

// Step advances the clock by up to d, stopping early at the next timer
// expiry. It returns how far it actually advanced and whether it stopped
// because a timer came due. This is the primitive the thread library uses
// to model user computation that can be interrupted by asynchronous
// events.
func (c *Clock) Step(d Duration) (advanced Duration, due bool) {
	if d < 0 {
		panic("vtime: negative step")
	}
	target := c.now.Add(d)
	if at, ok := c.NextExpiry(); ok && at <= target {
		if at < c.now {
			// Timer already overdue: do not move, report due.
			return 0, true
		}
		advanced = at.Sub(c.now)
		c.now = at
		return advanced, true
	}
	c.now = target
	return d, false
}
