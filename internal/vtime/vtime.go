// Package vtime provides the deterministic virtual clock that drives the
// simulated uniprocessor on which the Pthreads library runs.
//
// All latencies reported by the library and its benchmark harness are
// expressed in virtual nanoseconds. Time advances only when the machine
// model charges cost for executed work or when the system idles forward to
// the next pending timer event. This makes every run of a program — and in
// particular every benchmark and every perverted-scheduling debug run —
// exactly reproducible, which is one of the paper's stated goals for its
// debugging policies.
//
// The timer queue is a hierarchical timer wheel (Varghese & Lauck): eleven
// levels of 64 slots each, with a per-level occupancy bitmap. Level 0 slots
// are exact one-nanosecond ticks; level l slots span 64^l nanoseconds.
// Arm and cancel are O(1) (entries are intrusively doubly-linked, so cancel
// unlinks and recycles immediately), and advancing cascades each entry at
// most once per level, so draining n timers costs O(n·L) total rather than
// the binary heap's O(n·log n). Unlike a classic wheel, expiry remains
// exact: NextExpiry reports the precise timestamp of the earliest timer
// (memoized between structural changes), so Step and the idle loop stop at
// bit-identical instants and the determinism contract is untouched.
package vtime

import (
	"fmt"
	"math/bits"
)

// Time is an absolute virtual timestamp in nanoseconds since system start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Infinity is a timestamp later than any event the simulator will produce.
const Infinity Time = 1<<63 - 1

// Add returns the timestamp d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Micros returns the time as a floating-point count of microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// String renders the timestamp in microseconds (the unit of the paper's
// evaluation) below ten milliseconds, and in milliseconds above.
func (t Time) String() string { return fmtNS(int64(t)) }

// Micros returns the duration as a floating-point count of microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// String renders the duration like Time.String.
func (d Duration) String() string { return fmtNS(int64(d)) }

// fmtNS renders nanoseconds adaptively: µs below 10ms, ms below 10s,
// seconds above.
func fmtNS(ns int64) string {
	f := float64(ns)
	switch {
	case f < 0:
		return "-" + fmtNS(-ns)
	case f < 1e7:
		return fmt.Sprintf("%.2fµs", f/1e3)
	case f < 1e10:
		return fmt.Sprintf("%.2fms", f/1e6)
	default:
		return fmt.Sprintf("%.2fs", f/1e9)
	}
}

// TimerID names a scheduled timer event. The zero value is never a valid
// timer.
type TimerID int64

// Event is a timer event that has come due.
type Event struct {
	ID      TimerID
	At      Time // the scheduled expiry (<= clock.Now() when popped)
	Payload any
}

// Wheel geometry. Each level has 64 slots; level l slot width is 64^l ns.
// Eleven levels cover bit 62, which is the highest bit any valid timestamp
// (at most Infinity = 2^63-1) can differ from the anchor in.
const (
	levelBits  = 6
	slotCount  = 1 << levelBits
	slotMask   = slotCount - 1
	levelCount = 11
)

// Sentinel values for timerEntry.level marking list membership outside the
// wheel proper.
const (
	levelDue  = -1 // on the due list (expiry <= now)
	levelFree = -2 // on the free list
)

type timerEntry struct {
	id      TimerID
	at      Time
	seq     int64 // tiebreaker: FIFO among events at the same instant
	payload any

	// Intrusive doubly-linked list hooks. An entry is always on exactly
	// one list: a wheel slot (level >= 0, at that level/slot), the due
	// list (levelDue), or the free list (levelFree, next-linked only).
	prev, next *timerEntry
	level      int8
	slot       int8
}

// The live-entry index maps TimerID -> *timerEntry for Cancel. IDs are
// handed out monotonically, so a hash map would send every arm to a
// random bucket — one cache miss per operation once the table is large.
// Instead the index is paged: 4096 consecutive IDs share one page, so the
// arm/cancel/fire hot path stays on a single cached page, and a page is
// recycled through a pool the moment its last live entry leaves. Lookup
// is two shifts and two loads; the small page map is only consulted when
// the ID crosses a page boundary (once per 4096 arms on the hot path).
const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

type timerPage struct {
	slots [pageSize]*timerEntry
	live  int
}

// timerList is a doubly-linked FIFO of timer entries. Entries are appended
// at the tail, so a slot list is always in ascending seq order.
type timerList struct {
	head, tail *timerEntry
}

func (l *timerList) append(e *timerEntry) {
	e.prev, e.next = l.tail, nil
	if l.tail == nil {
		l.head = e
	} else {
		l.tail.next = e
	}
	l.tail = e
}

func (l *timerList) remove(e *timerEntry) {
	if e.prev == nil {
		l.head = e.next
	} else {
		e.prev.next = e.next
	}
	if e.next == nil {
		l.tail = e.prev
	} else {
		e.next.prev = e.prev
	}
	e.prev, e.next = nil, nil
}

// Clock is the virtual clock: a monotone timestamp plus a deterministic
// timer queue. Clock is not safe for concurrent use; in this system it is
// only ever touched by the single running thread, which is exactly the
// uniprocessor discipline the paper's monolithic monitor assumes.
type Clock struct {
	now Time

	// wt is the wheel anchor. Invariants: wt <= now always; every entry
	// stored in the wheel has at > wt and sits in the canonical slot for
	// its timestamp relative to wt (same enclosing window, strictly after
	// the anchor's position at its level); every entry with at <= wt is
	// on the due list, kept in (at, seq) order. The anchor trails now
	// lazily and is caught up by fixup before any query.
	wt       Time
	wheel    [levelCount][slotCount]timerList
	occupied [levelCount]uint64
	due      timerList

	// Paged TimerID -> entry index (see timerPage). lastIdx/lastPage
	// memoize the most recently touched page; pagePool recycles emptied
	// pages so a steady-state workload never allocates one.
	pages    map[TimerID]*timerPage
	lastIdx  TimerID
	lastPage *timerPage
	pagePool []*timerPage
	npending int

	nextID  TimerID
	nextSeq int64

	// cachedNext memoizes the exact earliest expiry across all armed
	// timers, valid while cachedOK. Arming an earlier timer lowers it;
	// cancelling or popping a timer at the cached instant invalidates
	// it. Advancing the clock never changes the armed set, so the memo
	// survives fixup — this is what keeps NextExpiry O(1) even when the
	// earliest region is a populous far-future slot.
	cachedNext Time
	cachedOK   bool

	// gov, when non-nil, arbitrates multi-host advancement (see
	// governor.go); lease is the frontier below which this clock may
	// advance without asking it. Both are dormant in single-host runs.
	gov   Governor
	lease Time

	// free is the timerEntry free list (next-linked). Entries are
	// recycled the moment they leave the queue — fired via PopDue or
	// disarmed via Cancel — so a steady-state arm/cancel/fire workload
	// allocates nothing and a cancel-heavy storm cannot accumulate
	// tombstones. The list needs no lock: the clock is only ever touched
	// by the single running thread (uniprocessor discipline).
	free     *timerEntry
	freeLen  int
	liveLen  int
}

// NewClock returns a clock at time zero with no timers armed.
func NewClock() *Clock {
	return &Clock{pages: make(map[TimerID]*timerPage), lastIdx: -1}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// page returns the index page holding id, or nil if no entry in that ID
// range is live.
func (c *Clock) page(id TimerID) *timerPage {
	idx := id >> pageBits
	if idx == c.lastIdx {
		return c.lastPage
	}
	pg := c.pages[idx]
	if pg != nil {
		c.lastIdx, c.lastPage = idx, pg
	}
	return pg
}

// indexPut files a live entry under its ID, creating (or recycling) the
// page on a boundary crossing.
func (c *Clock) indexPut(e *timerEntry) {
	idx := e.id >> pageBits
	pg := c.page(e.id)
	if pg == nil {
		if n := len(c.pagePool); n > 0 {
			pg = c.pagePool[n-1]
			c.pagePool[n-1] = nil
			c.pagePool = c.pagePool[:n-1]
		} else {
			pg = new(timerPage)
		}
		c.pages[idx] = pg
		c.lastIdx, c.lastPage = idx, pg
		// Crossing into a fresh page: the previous frontier page may have
		// been held resident while empty (see indexDel); release it now
		// that no future ID can land there.
		if prev, ok := c.pages[idx-1]; ok && prev.live == 0 {
			delete(c.pages, idx-1)
			c.pagePool = append(c.pagePool, prev)
		}
	}
	pg.slots[e.id&pageMask] = e
	pg.live++
	c.npending++
}

// indexDel removes a live entry from the ID index, returning its page to
// the pool when it empties — except the frontier page (the one the next
// IDs will land in), which stays resident so an arm/cancel cycle does not
// churn the page map every iteration.
func (c *Clock) indexDel(e *timerEntry, pg *timerPage) {
	pg.slots[e.id&pageMask] = nil
	pg.live--
	c.npending--
	if pg.live == 0 {
		idx := e.id >> pageBits
		if idx == c.nextID>>pageBits {
			return
		}
		delete(c.pages, idx)
		if c.lastIdx == idx {
			c.lastIdx, c.lastPage = -1, nil
		}
		c.pagePool = append(c.pagePool, pg)
	}
}

// place files an entry into its canonical wheel slot relative to the
// anchor. The caller guarantees e.at > c.wt.
func (c *Clock) place(e *timerEntry) {
	diff := uint64(e.at) ^ uint64(c.wt)
	level := (63 - bits.LeadingZeros64(diff)) / levelBits
	slot := int(uint64(e.at)>>(uint(level)*levelBits)) & slotMask
	e.level, e.slot = int8(level), int8(slot)
	c.wheel[level][slot].append(e)
	c.occupied[level] |= 1 << uint(slot)
}

// armDue inserts an entry whose expiry is at or behind the anchor into the
// due list, keeping (at, seq) order. The new entry carries the globally
// largest seq, so among equal timestamps it lands after its peers; the
// walk from the tail is O(1) in the common already-ordered case.
func (c *Clock) armDue(e *timerEntry) {
	e.level = levelDue
	p := c.due.tail
	for p != nil && p.at > e.at {
		p = p.prev
	}
	if p == nil {
		// New head.
		e.prev, e.next = nil, c.due.head
		if c.due.head == nil {
			c.due.tail = e
		} else {
			c.due.head.prev = e
		}
		c.due.head = e
		return
	}
	e.prev, e.next = p, p.next
	if p.next == nil {
		c.due.tail = e
	} else {
		p.next.prev = e
	}
	p.next = e
}

// ScheduleAt arms a timer that comes due at the absolute time at. Timers
// scheduled for the past come due immediately (on the next poll). The
// payload is handed back verbatim inside the popped Event.
func (c *Clock) ScheduleAt(at Time, payload any) TimerID {
	c.nextID++
	c.nextSeq++
	e := c.free
	if e != nil {
		c.free = e.next
		c.freeLen--
		*e = timerEntry{id: c.nextID, at: at, seq: c.nextSeq, payload: payload}
	} else {
		e = &timerEntry{id: c.nextID, at: at, seq: c.nextSeq, payload: payload}
		c.liveLen++
	}
	c.indexPut(e)
	if at > c.wt {
		c.place(e)
	} else {
		c.armDue(e)
	}
	if c.cachedOK && at < c.cachedNext {
		c.cachedNext = at
	}
	return e.id
}

// recycle returns an entry that has left the queue to the free list. The
// payload reference is dropped so the pool does not pin user data.
func (c *Clock) recycle(e *timerEntry) {
	e.payload = nil
	e.prev = nil
	e.level = levelFree
	e.next = c.free
	c.free = e
	c.freeLen++
}

// ScheduleAfter arms a timer d from now.
func (c *Clock) ScheduleAfter(d Duration, payload any) TimerID {
	return c.ScheduleAt(c.now.Add(d), payload)
}

// Cancel disarms the timer. It reports whether the timer was still armed.
func (c *Clock) Cancel(id TimerID) bool {
	_, ok := c.CancelTake(id)
	return ok
}

// CancelTake disarms the timer and hands its payload back to the caller,
// so callers that pool their payloads can reclaim them immediately. The
// entry is unlinked and recycled on the spot — cancellation is O(1) and
// leaves no tombstone behind, so a cancel-heavy workload (timed waits
// that always succeed) runs at a constant live-entry count.
func (c *Clock) CancelTake(id TimerID) (any, bool) {
	pg := c.page(id)
	if pg == nil {
		return nil, false
	}
	e := pg.slots[id&pageMask]
	if e == nil {
		return nil, false
	}
	c.indexDel(e, pg)
	switch {
	case e.level == levelDue:
		c.due.remove(e)
	default:
		lv, sl := int(e.level), int(e.slot)
		c.wheel[lv][sl].remove(e)
		if c.wheel[lv][sl].head == nil {
			c.occupied[lv] &^= 1 << uint(sl)
		}
	}
	if c.cachedOK && e.at == c.cachedNext {
		c.cachedOK = false
	}
	pl := e.payload
	c.recycle(e)
	return pl, true
}

// Pending reports the number of armed timers.
func (c *Clock) Pending() int { return c.npending }

// findMinRegion locates the earliest occupied region of the wheel: the
// lowest level with an occupied slot strictly after the anchor's position,
// and the first such slot. By the placement invariant, every entry at
// level l+1 expires after every entry at level l, and slots at one level
// are in time order, so this region contains the earliest wheel entry.
func (c *Clock) findMinRegion() (level, slot int, ok bool) {
	for l := 0; l < levelCount; l++ {
		pos := uint(uint64(c.wt)>>(uint(l)*levelBits)) & slotMask
		m := c.occupied[l] &^ (2<<pos - 1)
		if m != 0 {
			return l, bits.TrailingZeros64(m), true
		}
	}
	return 0, 0, false
}

// fixup advances the anchor to now, moving every entry with at <= now onto
// the due list in (at, seq) order and re-filing the rest at finer levels.
// It repeatedly takes the earliest occupied region: a level-0 slot is one
// exact tick, so its whole (seq-ordered) list flushes to the due list; a
// higher-level slot whose base has been reached cascades, in list order,
// into strictly lower levels — which preserves FIFO order because a
// freshly-entered window's lower slots are provably empty before their
// first cascade. Each entry moves at most once per level, so a drain of n
// timers costs O(n·L) amortized.
func (c *Clock) fixup() {
	for {
		l, s, ok := c.findMinRegion()
		if !ok {
			c.wt = c.now
			return
		}
		if l == 0 {
			at := Time(uint64(c.wt)&^slotMask | uint64(s))
			if at > c.now {
				c.wt = c.now
				return
			}
			c.wt = at
			// Every entry in a level-0 slot shares this exact expiry,
			// and the slot list is in seq order: splice it whole onto
			// the due tail.
			sl := &c.wheel[0][s]
			for e := sl.head; e != nil; e = e.next {
				e.level = levelDue
			}
			if c.due.tail == nil {
				c.due.head = sl.head
			} else {
				c.due.tail.next = sl.head
				sl.head.prev = c.due.tail
			}
			c.due.tail = sl.tail
			sl.head, sl.tail = nil, nil
			c.occupied[0] &^= 1 << uint(s)
			continue
		}
		shift := uint(l) * levelBits
		base := Time(uint64(c.wt)&^(1<<(shift+levelBits)-1) | uint64(s)<<shift)
		if base > c.now {
			c.wt = c.now
			return
		}
		c.wt = base
		sl := &c.wheel[l][s]
		e := sl.head
		sl.head, sl.tail = nil, nil
		c.occupied[l] &^= 1 << uint(s)
		for e != nil {
			next := e.next
			e.prev, e.next = nil, nil
			if e.at == base {
				e.level = levelDue
				c.due.append(e)
			} else {
				c.place(e)
			}
			e = next
		}
	}
}

// NextExpiry returns the expiry of the earliest armed timer.
func (c *Clock) NextExpiry() (Time, bool) {
	if c.cachedOK {
		return c.cachedNext, true
	}
	c.fixup()
	if e := c.due.head; e != nil {
		c.cachedNext, c.cachedOK = e.at, true
		return e.at, true
	}
	l, s, ok := c.findMinRegion()
	if !ok {
		return 0, false
	}
	var min Time
	if l == 0 {
		// A level-0 slot is a single exact tick.
		min = Time(uint64(c.wt)&^slotMask | uint64(s))
	} else {
		// The earliest region is a coarse slot: scan its list for the
		// exact minimum. The memo makes this scan once-per-slot rather
		// than once-per-query, and advancing past it cascades the slot,
		// so each entry is scanned O(L) times over its lifetime.
		min = Infinity
		for e := c.wheel[l][s].head; e != nil; e = e.next {
			if e.at < min {
				min = e.at
			}
		}
	}
	c.cachedNext, c.cachedOK = min, true
	return min, true
}

// PopDue removes and returns the earliest timer whose expiry is at or
// before the current time. Events at the same instant pop in the order
// they were scheduled.
func (c *Clock) PopDue() (Event, bool) {
	c.fixup()
	e := c.due.head
	if e == nil {
		return Event{}, false
	}
	c.due.remove(e)
	if pg := c.page(e.id); pg != nil {
		c.indexDel(e, pg)
	}
	if next := c.due.head; next != nil {
		c.cachedNext, c.cachedOK = next.at, true
	} else {
		c.cachedOK = false
	}
	ev := Event{ID: e.id, At: e.at, Payload: e.payload}
	c.recycle(e)
	return ev, true
}

// PeekDue reports the event the next PopDue would return, without
// consuming it: the entry stays armed and the clock state is
// untouched. Consumers that must decide whether to coalesce an
// in-flight announcement with the next event (the kernel's batched
// SIGIO path) use it to look one event ahead.
func (c *Clock) PeekDue() (Event, bool) {
	c.fixup()
	e := c.due.head
	if e == nil {
		return Event{}, false
	}
	return Event{ID: e.id, At: e.at, Payload: e.payload}, true
}

// AdvanceTo moves the clock forward to t. Moving backwards panics: the
// simulation is strictly monotone.
func (c *Clock) AdvanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("vtime: clock moved backwards: %v -> %v", c.now, t))
	}
	if c.gov != nil && t > c.lease {
		c.advanceToGov(t)
		return
	}
	c.now = t
}

// Advance moves the clock forward by d.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic("vtime: negative advance")
	}
	t := c.now.Add(d)
	if c.gov != nil && t > c.lease {
		c.advanceGov(t)
		return
	}
	c.now = t
}

// Step advances the clock by up to d, stopping early at the next timer
// expiry. It returns how far it actually advanced and whether it stopped
// because a timer came due. This is the primitive the thread library uses
// to model user computation that can be interrupted by asynchronous
// events.
func (c *Clock) Step(d Duration) (advanced Duration, due bool) {
	if d < 0 {
		panic("vtime: negative step")
	}
	if c.gov != nil && c.now.Add(d) > c.lease {
		return c.stepGov(d)
	}
	target := c.now.Add(d)
	if at, ok := c.NextExpiry(); ok && at <= target {
		if at < c.now {
			// Timer already overdue: do not move, report due.
			return 0, true
		}
		advanced = at.Sub(c.now)
		c.now = at
		return advanced, true
	}
	c.now = target
	return d, false
}
