package vtime

import "testing"

// scriptGov grants from a scripted list of (grant, lease) pairs.
type scriptGov struct {
	t      *testing.T
	grants []struct{ grant, lease Time }
	calls  []struct{ now, want Time }
}

func (g *scriptGov) Grant(now, want Time) (Time, Time) {
	g.calls = append(g.calls, struct{ now, want Time }{now, want})
	if len(g.grants) == 0 {
		g.t.Fatalf("unexpected Grant(now=%v, want=%v)", now, want)
	}
	gr := g.grants[0]
	g.grants = g.grants[1:]
	return gr.grant, gr.lease
}

// freeGov grants everything asked, with an infinite lease.
type freeGov struct{ calls int }

func (g *freeGov) Grant(now, want Time) (Time, Time) {
	g.calls++
	return want, Infinity
}

// TestGovernorNilIdentity: a clock with no governor behaves exactly as
// before — the governed paths are never taken.
func TestGovernorNilIdentity(t *testing.T) {
	a, b := NewClock(), NewClock()
	b.SetGovernor(nil)
	ops := func(c *Clock) (Time, Duration, bool) {
		c.ScheduleAfter(100, "x")
		c.Advance(30)
		adv, due := c.Step(100)
		c.AdvanceTo(c.Now().Add(50))
		return c.Now(), adv, due
	}
	an, aadv, adue := ops(a)
	bn, badv, bdue := ops(b)
	if an != bn || aadv != badv || adue != bdue {
		t.Fatalf("nil-governor divergence: (%v,%v,%v) vs (%v,%v,%v)", an, aadv, adue, bn, badv, bdue)
	}
}

// TestGovernorLeaseFreeRun: advances below the lease never call the
// governor; the first advance beyond it does.
func TestGovernorLeaseFreeRun(t *testing.T) {
	c := NewClock()
	g := &freeGov{}
	c.SetGovernor(g)
	c.Advance(10) // lease starts at 0: must ask
	if g.calls != 1 {
		t.Fatalf("calls = %d, want 1", g.calls)
	}
	c.Advance(500) // lease is Infinity now: free-run
	c.AdvanceTo(c.Now().Add(500))
	if _, due := c.Step(100); due {
		t.Fatal("unexpected due")
	}
	if g.calls != 1 {
		t.Fatalf("calls = %d, want 1 (lease should cover free-run)", g.calls)
	}
	if c.Now() != 1110 {
		t.Fatalf("now = %v, want 1110", c.Now())
	}
}

// TestGovernorPartialGrant: a partial grant loops, and a truncatable
// advance stops early at an event another host landed mid-park.
func TestGovernorPartialGrant(t *testing.T) {
	c := NewClock()
	g := &scriptGov{t: t}
	c.SetGovernor(g)
	// First grant: partial to 40 with lease 40. While "parked", an event
	// lands at 60 (simulated by scheduling before the second call).
	g.grants = append(g.grants,
		struct{ grant, lease Time }{40, 40},
		struct{ grant, lease Time }{60, 70},
	)
	c.ScheduleAt(60, "arrival")
	c.AdvanceTo(100)
	// The idle advance must stop at 60, not reach 100.
	if c.Now() != 60 {
		t.Fatalf("now = %v, want 60 (truncated at arrival)", c.Now())
	}
	if len(g.calls) != 2 {
		t.Fatalf("grant calls = %d, want 2", len(g.calls))
	}
	// The second ask must have been bounded by the arrival, not the target.
	if g.calls[1].want != 60 {
		t.Fatalf("second want = %v, want 60", g.calls[1].want)
	}
}

// TestGovernorChargeIgnoresTimers: a charge (Advance) never truncates at
// a timer expiry — it asks straight to its target.
func TestGovernorChargeIgnoresTimers(t *testing.T) {
	c := NewClock()
	g := &scriptGov{t: t}
	c.SetGovernor(g)
	g.grants = append(g.grants, struct{ grant, lease Time }{100, 200})
	c.ScheduleAt(50, "mid-charge")
	c.Advance(100)
	if c.Now() != 100 {
		t.Fatalf("now = %v, want 100", c.Now())
	}
	if g.calls[0].want != 100 {
		t.Fatalf("want = %v, want 100 (charges don't stop at timers)", g.calls[0].want)
	}
	if at, ok := c.NextExpiry(); !ok || at != 50 {
		t.Fatalf("expiry = %v,%v — timer must still be armed (overdue)", at, ok)
	}
}

// TestGovernorPauseJump: a grant beyond the want (a fault-window pause)
// carries the clock past the target; Step reports the inflated advance.
func TestGovernorPauseJump(t *testing.T) {
	c := NewClock()
	g := &scriptGov{t: t}
	c.SetGovernor(g)
	g.grants = append(g.grants, struct{ grant, lease Time }{500, 500})
	adv, due := c.Step(100)
	if c.Now() != 500 {
		t.Fatalf("now = %v, want 500 (pause jump)", c.Now())
	}
	if adv != 500 || due {
		t.Fatalf("Step = (%v, %v), want (500, false)", adv, due)
	}
}

// TestGovernorStepDue: the governed Step still stops at expiries and
// reports due, exactly like the ungoverned one.
func TestGovernorStepDue(t *testing.T) {
	c := NewClock()
	g := &freeGov{}
	c.SetGovernor(g)
	// Force the governed path by keeping the lease behind the target.
	c.ScheduleAt(30, "timer")
	adv, due := c.Step(100)
	if adv != 30 || !due {
		t.Fatalf("Step = (%v, %v), want (30, true)", adv, due)
	}
	if c.Now() != 30 {
		t.Fatalf("now = %v, want 30", c.Now())
	}
	// Overdue timer: no motion, report due.
	adv, due = c.Step(100)
	if adv != 0 || !due {
		t.Fatalf("Step = (%v, %v), want (0, true)", adv, due)
	}
}
