package fabric

import (
	"errors"
	"strings"
	"testing"

	"pthreads/internal/core"
	"pthreads/internal/vtime"
)

// echoFleet builds a two-host fleet: srv echoes one message back to cli.
func echoFleet(t *testing.T, mut func(*Config)) (*Fabric, *int) {
	t.Helper()
	got := new(int)
	cfg := Config{
		Hosts: []HostSpec{
			{Name: "srv", Body: func(h *Host) error {
				l, err := h.IO.Listen("echo", 4)
				if err != nil {
					return err
				}
				c, err := l.Accept()
				if err != nil {
					return err
				}
				n, err := c.Read(512)
				if err != nil {
					return err
				}
				if _, err := c.Write(n); err != nil {
					return err
				}
				return c.Close()
			}},
			{Name: "cli", Body: func(h *Host) error {
				c, err := h.IO.Dial("srv:echo")
				if err != nil {
					return err
				}
				if _, err := c.Write(256); err != nil {
					return err
				}
				for *got < 256 {
					n, err := c.Read(256)
					if err != nil {
						return err
					}
					*got += n
				}
				return c.Close()
			}},
		},
		Drain: []string{"cli"},
	}
	if mut != nil {
		mut(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f, got
}

func TestTwoHostEcho(t *testing.T) {
	f, got := echoFleet(t, nil)
	if err := f.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if *got != 256 {
		t.Fatalf("echoed %d bytes, want 256", *got)
	}
	// Both stacks saw traffic: the client's bytes went out its NIC, the
	// server's stats show the accept.
	cs := f.Host("cli").IO.Stack().Stats()
	ss := f.Host("srv").IO.Stack().Stats()
	if cs.Dials != 1 || ss.Accepted != 1 {
		t.Fatalf("dials=%d accepted=%d, want 1/1", cs.Dials, ss.Accepted)
	}
	if cs.BytesSent != 256 || ss.BytesSent != 256 {
		t.Fatalf("bytes cli=%d srv=%d, want 256/256", cs.BytesSent, ss.BytesSent)
	}
}

func TestFleetDeterminism(t *testing.T) {
	run := func() (string, []core.TraceEvent, []core.TraceEvent) {
		f, _ := echoFleet(t, func(c *Config) {
			c.Trace = true
			c.Loss = []LinkLoss{{From: "srv", To: "cli", Rate: 0.2}}
			c.Pauses = []HostPause{{Host: "srv", From: 100 * 1000, To: 400 * 1000}}
		})
		if err := f.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return f.Fingerprint(), f.Host("srv").TraceEvents(), f.Host("cli").TraceEvents()
	}
	fp1, s1, c1 := run()
	fp2, s2, c2 := run()
	if fp1 != fp2 {
		t.Fatalf("fingerprints differ: %s vs %s", fp1, fp2)
	}
	for name, pair := range map[string][2][]core.TraceEvent{"srv": {s1, s2}, "cli": {c1, c2}} {
		a, b := pair[0], pair[1]
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d events", name, len(a), len(b))
		}
		for i := range a {
			if a[i].At != b[i].At || a[i].Kind != b[i].Kind || a[i].Obj != b[i].Obj || a[i].Arg != b[i].Arg {
				t.Fatalf("%s: event %d differs: %+v vs %+v", name, i, a[i], b[i])
			}
		}
	}
}

func TestFleetDeadlock(t *testing.T) {
	cfg := Config{
		Hosts: []HostSpec{
			{Name: "a", Body: func(h *Host) error {
				l, err := h.IO.Listen("x", 1)
				if err != nil {
					return err
				}
				_, err = l.Accept() // nobody ever dials: blocks forever
				return err
			}},
			{Name: "b", Body: func(h *Host) error {
				l, err := h.IO.Listen("y", 1)
				if err != nil {
					return err
				}
				_, err = l.Accept()
				return err
			}},
		},
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	err = f.Run()
	if err == nil || !strings.Contains(err.Error(), "fleet deadlock") {
		t.Fatalf("want fleet deadlock, got %v", err)
	}
	if !strings.Contains(err.Error(), "host a") || !strings.Contains(err.Error(), "host b") {
		t.Fatalf("deadlock report misses a host: %v", err)
	}
}

func TestDrainTearsDownServer(t *testing.T) {
	// The server accepts forever; Drain on the client ends the fleet.
	f, got := echoFleet(t, func(c *Config) {
		body := c.Hosts[0].Body
		c.Hosts[0].Body = func(h *Host) error {
			if err := body(h); err != nil {
				return err
			}
			// Keep the host alive waiting for a connection that never
			// comes; the drain must kill it without an error.
			l, err := h.IO.Listen("echo2", 1)
			if err != nil {
				return err
			}
			_, err = l.Accept()
			return err
		}
	})
	if err := f.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if *got != 256 {
		t.Fatalf("echoed %d bytes, want 256", *got)
	}
}

func TestHostBodyErrorFailsFleet(t *testing.T) {
	boom := errors.New("boom")
	cfg := Config{
		Hosts: []HostSpec{
			{Name: "a", Body: func(h *Host) error { return boom }},
			{Name: "b", Body: func(h *Host) error {
				l, err := h.IO.Listen("x", 1)
				if err != nil {
					return err
				}
				_, err = l.Accept()
				return err
			}},
		},
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	err = f.Run()
	if err == nil || !strings.Contains(err.Error(), "host a") || !errors.Is(err, boom) {
		t.Fatalf("want wrapped boom from host a, got %v", err)
	}
}

func TestPauseShiftsWork(t *testing.T) {
	// Unpaused vs paused server: the client's completion time must shift
	// by at least the window width (the server freezes mid-exchange).
	finish := func(pause bool) vtime.Time {
		f, _ := echoFleet(t, func(c *Config) {
			if pause {
				c.Pauses = []HostPause{{Host: "srv", From: 100 * 1000, To: 2 * 1000 * 1000}}
			}
		})
		if err := f.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return f.Host("cli").Sys.Clock().Now()
	}
	base := finish(false)
	paused := finish(true)
	if paused < base.Add(vtime.Duration(1*1000*1000)) {
		t.Fatalf("pause did not delay the exchange: base %v, paused %v", base, paused)
	}
}

func TestPermanentPartitionTimesOut(t *testing.T) {
	var dialErr error
	cfg := Config{
		Hosts: []HostSpec{
			{Name: "srv", Body: func(h *Host) error {
				l, err := h.IO.Listen("echo", 4)
				if err != nil {
					return err
				}
				_, err = l.AcceptTimeout(50 * vtime.Millisecond)
				return nil // timeout expected: the SYN never arrives
			}},
			{Name: "cli", Body: func(h *Host) error {
				_, dialErr = h.IO.DialTimeout("srv:echo", 10*vtime.Millisecond)
				return nil
			}},
		},
		Partitions: []LinkPartition{{From: "cli", To: "srv", Start: 0, End: vtime.Infinity}},
		Drain:      []string{"cli", "srv"},
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e, ok := core.AsErrno(dialErr); !ok || e != core.ETIMEDOUT {
		t.Fatalf("dial through permanent partition: got %v, want ETIMEDOUT", dialErr)
	}
}

func TestCrossHostRefused(t *testing.T) {
	var dialErr error
	cfg := Config{
		Hosts: []HostSpec{
			// The machine must be up for its kernel to refuse the SYN —
			// a host whose body has completed is down, and dialing a down
			// host hangs (timeout territory), exactly like real TCP. Park
			// the body on an unrelated listener; the drain tears it down.
			{Name: "srv", Body: func(h *Host) error {
				l, err := h.IO.Listen("other", 1)
				if err != nil {
					return err
				}
				_, err = l.Accept()
				return err
			}},
			{Name: "cli", Body: func(h *Host) error {
				_, dialErr = h.IO.Dial("srv:nope")
				return nil
			}},
		},
		Drain: []string{"cli"},
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e, ok := core.AsErrno(dialErr); !ok || e != core.ECONNREFUSED {
		t.Fatalf("dial to missing remote listener: got %v, want ECONNREFUSED", dialErr)
	}
}

func TestLossDelaysButDelivers(t *testing.T) {
	// With heavy loss on the data path the echo still completes (RTO
	// redelivery), later than the clean run.
	finish := func(rate float64) vtime.Time {
		f, got := echoFleet(t, func(c *Config) {
			c.Seed = 42
			c.Loss = []LinkLoss{{From: "cli", To: "srv", Rate: rate}}
		})
		if err := f.Run(); err != nil {
			t.Fatalf("Run (rate %v): %v", rate, err)
		}
		if *got != 256 {
			t.Fatalf("echoed %d bytes, want 256", *got)
		}
		return f.Host("cli").Sys.Clock().Now()
	}
	clean := finish(0)
	lossy := finish(0.9)
	if lossy <= clean {
		t.Fatalf("loss did not delay delivery: clean %v, lossy %v", clean, lossy)
	}
}
