// Package fabric runs a virtual datacenter: N simulated hosts — each a
// complete library-threads process with its own unixkern kernel, fd
// shards, and TCP-like socket stack — joined by a latency/loss/partition
// modeled network and advanced along ONE causally-consistent virtual
// timeline. The turn rule mirrors the SMP executor's min-(clock, ID)
// discipline one level up: of all parked hosts, the one with the
// smallest (clock, hostID) runs next, and it runs alone — the entire
// fleet executes one goroutine at a time, so every run is a
// deterministic function of (configuration, seed, fault script).
//
// The synchronization protocol is conservative parallel discrete-event
// simulation. Each host's clock carries a Governor (internal/vtime) that
// parks the host whenever it wants to advance beyond its lease. A grant
// is decided only when every live host is parked, so exactly one host
// runs at any instant and the coordinator may freely inspect the parked
// hosts' clocks. The picked host (smallest clock, host ID as tiebreak)
// receives
//
//	grant = min(want, pending(h), lease(h))
//	lease(h) = max( min over other live x of clock(x) + Delay,
//	                E + Delay )   where E = min over live x of
//	                              min(want(x), pending(x))
//
// pending(x) being the earliest event already scheduled on x's wheel —
// cross-host sends materialize on the receiver's wheel at send time, so
// "in flight" messages are always visible there. The first lease term is
// sound by clock monotonicity alone: a message from x departs no earlier
// than clock(x) and arrives no earlier than clock(x)+Delay. The second
// is the fleet fast-forward: while all hosts are parked, none can act —
// send, fire a timer, finish a charge — before E, so no NEW arrival can
// land anywhere before E+Delay, and the fleet skips idle gaps in one
// grant instead of leapfrogging Delay at a time. The grant clamps to the
// host's own pending event so arrivals are processed at their true
// instants; when E is Infinity, no thread anywhere is runnable and no
// event is pending anywhere — a fleet-wide deadlock, reported with every
// blocked thread on every host.
//
// Fault injection is scripted and deterministic: per-direction link loss
// (lost data segments redeliver one RTO later), one-way partitions
// (segments held to the healing instant, or dropped forever), and host
// pauses (the clock jumps over the window at grant time; work and
// timers due inside it complete late, while the other hosts free-run
// ahead — exactly the "frozen process" a SIGSTOP'd replica exhibits).
package fabric

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"pthreads/internal/core"
	"pthreads/internal/io"
	"pthreads/internal/net"
	"pthreads/internal/obs"
	"pthreads/internal/trace"
	"pthreads/internal/vtime"
)

// HostSpec declares one simulated host.
type HostSpec struct {
	// Name identifies the host in addresses ("name:addr"), traces, and
	// fault scripts. Must be unique and contain no ':'.
	Name string
	// Cfg is the host's thread-system configuration. Tracer, Explorer
	// and ExternalEvents are managed by the fabric.
	Cfg core.Config
	// Body runs as the host's main thread. A non-nil error brings the
	// whole fleet down.
	Body func(h *Host) error
}

// LinkLoss drops data segments on the From->To direction with the given
// probability; each lost transmission is retried one RTO later (the
// segment eventually arrives unless a permanent partition swallows it).
type LinkLoss struct {
	From, To string
	Rate     float64
}

// LinkPartition blackholes the From->To direction for [Start, End):
// segments departing into the window are held and delivered at End.
// End == vtime.Infinity drops them forever (the classic one-way
// partition: timeouts, not errors).
type LinkPartition struct {
	From, To   string
	Start, End vtime.Time
}

// HostPause freezes a host for [From, To) of fleet time: its clock jumps
// over the window at the first grant that crosses it, so everything the
// host would have done inside the window happens late by the window's
// width while the rest of the fleet runs ahead.
type HostPause struct {
	Host     string
	From, To vtime.Time
}

// Config parameterizes a fleet.
type Config struct {
	Hosts []HostSpec
	// Net configures every host's socket stack.
	Net net.Config
	// Delay is the one-way cross-host wire latency (default 50µs). It
	// is also the conservative lookahead of the turn rule, so it must
	// be positive.
	Delay vtime.Duration
	// RTO is the redelivery delay for lost data segments (default
	// 4×Delay).
	RTO vtime.Duration
	// Seed drives the per-wire loss PRNGs.
	Seed int64
	// Loss, Partitions, Pauses are the fault script.
	Loss       []LinkLoss
	Partitions []LinkPartition
	Pauses     []HostPause
	// Drain names the hosts whose completion ends the fleet (the rest
	// are torn down); empty means run until every host completes.
	Drain []string
	// Trace attaches a per-host trace recorder to every host.
	Trace bool
	// Obs configures the fleet observability plane (spans, rollups,
	// watchdogs — see obs.go). The zero value disables it entirely.
	Obs ObsConfig

	// explorer, when non-nil, wires a schedule-exploration controller
	// into every host (see explore.go; fabric-internal).
	explorer *fleetCtl
}

// grantMsg resumes a parked host: advance to grant, free-run below
// lease. kill tears the host down instead.
type grantMsg struct {
	grant, lease vtime.Time
	kill         bool
}

// parkMsg is a host's report to the coordinator: either a park (the host
// wants to advance now -> want and is blocked until granted) or its
// completion.
type parkMsg struct {
	h         *Host
	now, want vtime.Time
	done      bool
	err       error
}

// hostKill unwinds a host goroutine blocked in Grant during teardown.
type hostKill struct{}

// Host is one simulated machine of the fleet.
type Host struct {
	ID   int
	Name string
	Sys  *core.System
	IO   *io.IO

	f    *Fabric
	spec HostSpec
	rec  *trace.Recorder

	grantCh chan grantMsg

	// Coordinator-side view (touched only while the host is parked or
	// before it starts).
	now, want vtime.Time
	parked    bool
	done      bool
	pauses    []HostPause
	pauseIdx  int
	bodyErr   error
}

// TraceEvents returns the host's recorded trace (Config.Trace only).
func (h *Host) TraceEvents() []core.TraceEvent {
	if h.rec == nil {
		return nil
	}
	return h.rec.Events
}

// hostGov adapts the coordinator protocol to vtime.Governor: every ask
// parks the host on the fabric's channel and blocks until granted.
type hostGov struct{ h *Host }

func (g *hostGov) Grant(now, want vtime.Time) (vtime.Time, vtime.Time) {
	h := g.h
	h.f.backCh <- parkMsg{h: h, now: now, want: want}
	gm := <-h.grantCh
	if gm.kill {
		panic(hostKill{})
	}
	return gm.grant, gm.lease
}

// Fabric is the coordinator of one fleet run.
type Fabric struct {
	cfg    Config
	hosts  []*Host
	byName map[string]*Host
	wires  map[[2]int]*wire
	backCh chan parkMsg

	nLive   int
	nParked int
	err     error
	fp      uint64 // FNV-1a over the grant/done stream
	flows   uint64
	ran     bool
	obs     *fleetObs // observability plane; nil when disabled
}

// New builds a fleet. Host bodies do not start until Run.
func New(cfg Config) (*Fabric, error) {
	if len(cfg.Hosts) == 0 {
		return nil, errors.New("fabric: no hosts")
	}
	if cfg.Delay == 0 {
		cfg.Delay = 50 * vtime.Microsecond
	}
	if cfg.Delay <= 0 {
		return nil, errors.New("fabric: Delay must be positive")
	}
	if cfg.RTO == 0 {
		cfg.RTO = 4 * cfg.Delay
	}
	f := &Fabric{
		cfg:    cfg,
		byName: make(map[string]*Host),
		wires:  make(map[[2]int]*wire),
		backCh: make(chan parkMsg),
		fp:     fnvOffset,
	}
	if cfg.Obs.enabled() {
		f.obs = newFleetObs(cfg.Obs, len(cfg.Hosts))
	}
	for i, spec := range cfg.Hosts {
		if strings.Contains(spec.Name, ":") || spec.Name == "" {
			return nil, fmt.Errorf("fabric: bad host name %q", spec.Name)
		}
		if _, dup := f.byName[spec.Name]; dup {
			return nil, fmt.Errorf("fabric: duplicate host %q", spec.Name)
		}
		h := &Host{ID: i, Name: spec.Name, f: f, spec: spec, grantCh: make(chan grantMsg)}
		hcfg := spec.Cfg
		hcfg.ExternalEvents = true
		if cfg.Trace {
			h.rec = trace.New()
			hcfg.Tracer = h.rec
		}
		if cfg.explorer != nil {
			hcfg.Explorer = cfg.explorer.forHost(i)
		}
		var spanRec *obs.Recorder
		if f.obs != nil && cfg.Obs.Spans {
			spanRec = obs.NewRecorder(i)
			f.obs.recs = append(f.obs.recs, spanRec)
			hcfg.Spans = spanRec
		}
		h.Sys = core.New(hcfg)
		h.IO = io.New(h.Sys, cfg.Net)
		h.IO.Stack().SetRouter(&hostRouter{h: h})
		h.Sys.Clock().SetGovernor(&hostGov{h: h})
		if spanRec != nil {
			h.IO.SetSpans(spanRec)
		}
		f.hosts = append(f.hosts, h)
		f.byName[spec.Name] = h
	}
	for _, p := range cfg.Pauses {
		h := f.byName[p.Host]
		if h == nil {
			return nil, fmt.Errorf("fabric: pause names unknown host %q", p.Host)
		}
		if p.To <= p.From {
			return nil, fmt.Errorf("fabric: empty pause window on %q", p.Host)
		}
		h.pauses = append(h.pauses, p)
	}
	for _, h := range f.hosts {
		sort.Slice(h.pauses, func(a, b int) bool { return h.pauses[a].From < h.pauses[b].From })
	}
	for _, d := range cfg.Drain {
		if f.byName[d] == nil {
			return nil, fmt.Errorf("fabric: drain names unknown host %q", d)
		}
	}
	// One wire per ordered host pair, lazily realized here so the loss
	// PRNG seeds and partition windows are fixed up front.
	for i := range f.hosts {
		for j := range f.hosts {
			if i == j {
				continue
			}
			w := &wire{
				delay: cfg.Delay,
				rto:   cfg.RTO,
				prng:  mixSeed(uint64(cfg.Seed), uint64(i), uint64(j)),
				src:   i,
				dst:   j,
				obs:   f.obs,
			}
			for _, l := range cfg.Loss {
				if l.From == f.hosts[i].Name && l.To == f.hosts[j].Name {
					w.lossRate = l.Rate
				}
			}
			for _, p := range cfg.Partitions {
				if p.From == f.hosts[i].Name && p.To == f.hosts[j].Name {
					w.parts = append(w.parts, partWindow{from: p.Start, to: p.End})
				}
			}
			sort.Slice(w.parts, func(a, b int) bool { return w.parts[a].from < w.parts[b].from })
			f.wires[[2]int{i, j}] = w
		}
	}
	return f, nil
}

// Host returns a host by name (nil if unknown).
func (f *Fabric) Host(name string) *Host { return f.byName[name] }

// Hosts returns the fleet's hosts in ID order.
func (f *Fabric) Hosts() []*Host { return f.hosts }

// Fingerprint returns the schedule fingerprint accumulated over every
// coordinator decision of the run: two runs of the same fleet are
// equivalent iff their fingerprints (and per-host traces) match.
func (f *Fabric) Fingerprint() string { return fmt.Sprintf("%016x", f.fp) }

// Run executes the fleet to completion and returns the first error (a
// host body failure, or a fleet-wide deadlock). It may be called once.
func (f *Fabric) Run() error {
	if f.ran {
		return errors.New("fabric: Run called twice")
	}
	f.ran = true
	f.nLive = len(f.hosts)
	for _, h := range f.hosts {
		go h.run()
	}
	for {
		// Wait until every live host is parked. Between grants exactly
		// one host runs, so this receives exactly one message — except
		// at startup, where all hosts park their init charges
		// concurrently (harmless: parks are keyed by host, and nothing
		// is decided until all have arrived).
		for f.nParked < f.nLive {
			m := <-f.backCh
			if !m.done {
				m.h.now, m.h.want, m.h.parked = m.now, m.want, true
				f.nParked++
				if f.obs != nil {
					f.obs.onPark(m.h, m.now)
				}
				continue
			}
			m.h.done = true
			f.nLive--
			f.mix(uint64(m.h.ID), doneMark, 0)
			if m.err != nil && f.err == nil {
				f.err = fmt.Errorf("host %s: %w", m.h.Name, m.err)
			}
			if f.err != nil {
				f.killAll()
				return f.err
			}
			if f.drained() || f.nLive == 0 {
				f.killAll()
				return nil
			}
		}
		e := f.fleetNext()
		if e == vtime.Infinity {
			f.err = errors.New(f.deadlockReport())
			f.killAll()
			return f.err
		}
		if f.obs != nil {
			f.obs.sampleAt(f, e)
			f.obs.checkWaitCycle(f)
		}
		h := f.pick()
		grant, lease := f.grantFor(h, e)
		f.mix(uint64(h.ID), uint64(h.want), uint64(grant))
		if f.obs != nil {
			f.obs.onGrant(f, h, grant)
		}
		h.parked = false
		f.nParked--
		h.grantCh <- grantMsg{grant: grant, lease: lease}
	}
}

// run is one host's goroutine: execute the body under the thread system
// and report completion. A teardown kill unwinds through here.
func (h *Host) run() {
	err := errors.New("fabric: host torn down")
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(hostKill); !ok {
				panic(r)
			}
		}
		h.f.backCh <- parkMsg{h: h, done: true, err: err}
	}()
	// Start rendezvous: park once at t=0 before the body runs, so host
	// bodies execute strictly one at a time from the very first instant
	// (want == now marks a host that may act immediately once released;
	// the grant values are not applied to the clock).
	h.f.backCh <- parkMsg{h: h, now: 0, want: 0}
	if gm := <-h.grantCh; gm.kill {
		panic(hostKill{})
	}
	err = h.Sys.Run(func() {
		if e := h.spec.Body(h); e != nil {
			h.bodyErr = e
		}
	})
	if err == nil {
		err = h.bodyErr
	}
}

// pick selects the parked host with the smallest (clock, ID).
func (f *Fabric) pick() *Host {
	var best *Host
	for _, h := range f.hosts {
		if !h.parked || h.done {
			continue
		}
		if best == nil || h.now < best.now {
			best = h
		}
	}
	return best
}

// eff is the earliest instant host h can possibly act: the target of its
// parked ask, lowered by any event already scheduled on its wheel
// (including arrivals other hosts landed after it parked — the parked
// ask cannot know about those). Safe to call only while h is parked.
func (h *Host) eff() vtime.Time {
	w := h.want
	if at, ok := h.Sys.Clock().NextExpiry(); ok && at < w {
		w = at
	}
	return w
}

// fleetNext returns E, the earliest instant anything can happen anywhere
// in the fleet. Infinity means fleet-wide deadlock. Called with every
// live host parked.
func (f *Fabric) fleetNext() vtime.Time {
	e := vtime.Infinity
	for _, h := range f.hosts {
		if h.done {
			continue
		}
		if w := h.eff(); w < e {
			e = w
		}
	}
	return e
}

// grantFor computes the granted frontier and lease for h, applying any
// pause window the grant crosses. e is the fleet-wide next-action bound
// from fleetNext.
func (f *Fabric) grantFor(h *Host, e vtime.Time) (grant, lease vtime.Time) {
	lease = vtime.Infinity
	for _, x := range f.hosts {
		if x == h || x.done {
			continue
		}
		if l := satAdd(x.now, f.cfg.Delay); l < lease {
			lease = l
		}
	}
	// Fleet fast-forward: no host acts before e, so no new arrival can
	// land anywhere before e+Delay.
	if eb := satAdd(e, f.cfg.Delay); eb > lease {
		lease = eb
	}
	if lease == vtime.Infinity {
		// Keep the lease finite so an idle host still asks (and the
		// fleet can detect deadlock) instead of free-running to the end
		// of time. Only reachable with a single live host.
		lease = vtime.Infinity - 1
	}
	grant = h.want
	if lease < grant {
		grant = lease
	}
	// Clamp to the host's own earliest pending event so arrivals are
	// processed at their true instants, not wherever the lease happens
	// to lie. An already-due event (at <= now — possible when an arrival
	// raced the park at the same instant, or after a pause jump) cannot
	// clamp: grants must move the clock, and the host polls it on wake.
	if at, ok := h.Sys.Clock().NextExpiry(); ok && at > h.now && at < grant {
		grant = at
	}
	// Pause windows: a grant crossing a window's start jumps over it —
	// the host is frozen for the width of the window, so whatever it
	// was about to do completes that much later.
	for h.pauseIdx < len(h.pauses) {
		w := h.pauses[h.pauseIdx]
		from := w.From
		if h.now > from {
			from = h.now
		}
		if w.To <= from {
			h.pauseIdx++
			continue
		}
		if grant <= from {
			break
		}
		grant = satAdd(grant, vtime.Duration(w.To-from))
		h.pauseIdx++
	}
	if lease < grant {
		lease = grant
	}
	return grant, lease
}

func (f *Fabric) deadlockReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet deadlock: all %d live hosts idle with nothing pending\n", f.nLive)
	for _, h := range f.hosts {
		if h.done {
			continue
		}
		fmt.Fprintf(&b, "host %s: %s", h.Name, h.Sys.BlockedReport())
	}
	return b.String()
}

// drained reports whether every host named in Drain has completed.
func (f *Fabric) drained() bool {
	if len(f.cfg.Drain) == 0 {
		return false
	}
	for _, d := range f.cfg.Drain {
		if !f.byName[d].done {
			return false
		}
	}
	return true
}

// killAll tears down every live host: first Stop releases the host's
// parked threads and lets its Run return, then the kill grant unwinds
// the one goroutine blocked in Grant. Each host sends exactly one done
// message, consumed here, so the coordinator exits with no goroutine
// still talking to it.
func (f *Fabric) killAll() {
	reason := f.err
	if reason == nil {
		reason = errors.New("fabric: fleet drained")
	}
	for _, h := range f.hosts {
		if h.done {
			continue
		}
		h.Sys.Stop(reason)
		h.grantCh <- grantMsg{kill: true}
		for {
			m := <-f.backCh
			if m.done && m.h == h {
				h.done = true
				break
			}
			// Parks from the dying host are impossible (its threads are
			// dead); parks from others cannot happen while they are
			// parked. Drop anything unexpected defensively.
		}
	}
	if f.obs != nil {
		f.obs.teardown(f)
	}
}

// FNV-1a over the coordinator's decision stream.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	doneMark  = 0x646f6e65 // "done"
)

func (f *Fabric) mix(words ...uint64) {
	for _, w := range words {
		for i := 0; i < 8; i++ {
			f.fp ^= w & 0xff
			f.fp *= fnvPrime
			w >>= 8
		}
	}
}

func mixSeed(words ...uint64) uint64 {
	h := uint64(fnvOffset)
	for _, w := range words {
		for i := 0; i < 8; i++ {
			h ^= w & 0xff
			h *= fnvPrime
			w >>= 8
		}
	}
	if h == 0 {
		h = fnvOffset
	}
	return h
}

func satAdd(t vtime.Time, d vtime.Duration) vtime.Time {
	if d < 0 {
		panic("fabric: negative duration")
	}
	if t > vtime.Infinity-vtime.Time(d) {
		return vtime.Infinity
	}
	return t.Add(d)
}
