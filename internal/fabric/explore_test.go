package fabric

import (
	"strings"
	"testing"

	"pthreads/internal/explore"
)

func TestFleetTokenRoundTrip(t *testing.T) {
	in := FleetSchedule{Decisions: []FleetDecision{
		{Host: 0, Index: 12, Pick: 1},
		{Host: 2, Index: 40, Pick: 0},
	}}
	tok := in.Token()
	if tok != "f1:h0/12/1,h2/40/0" {
		t.Fatalf("token = %q", tok)
	}
	out, err := ParseFleetToken(tok)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(out.Decisions) != 2 || out.Decisions[0] != in.Decisions[0] || out.Decisions[1] != in.Decisions[1] {
		t.Fatalf("round trip: %+v", out)
	}
	if _, err := ParseFleetToken("v1:3/0"); err == nil {
		t.Fatalf("single-host token accepted as fleet token")
	}
	if _, err := ParseFleetToken("f1:junk"); err == nil {
		t.Fatalf("malformed decision accepted")
	}
	if empty, err := ParseFleetToken("f1:"); err != nil || len(empty.Decisions) != 0 {
		t.Fatalf("empty token: %+v, %v", empty, err)
	}
}

func TestScenariosCleanByDefault(t *testing.T) {
	for _, sc := range FleetScenarios() {
		out := RunFleetSchedule(sc, FleetSchedule{})
		if out.Failure != "" {
			t.Fatalf("%s: unforced run failed: %s", sc.Name, out.Failure)
		}
	}
}

func TestFleetReplayReproduces(t *testing.T) {
	sc := *FleetScenarioByName("fleet-echo")
	a := RunFleetSchedule(sc, FleetSchedule{})
	b := RunFleetSchedule(sc, FleetSchedule{})
	if a.TraceHash != b.TraceHash || a.Fingerprint != b.Fingerprint {
		t.Fatalf("unforced runs differ: %s/%s vs %s/%s", a.Fingerprint, a.TraceHash, b.Fingerprint, b.TraceHash)
	}
}

func TestExploreFindsCrossHostLostWakeup(t *testing.T) {
	sc := *FleetScenarioByName("fleet-lost-wakeup")
	r := ExploreFleetBounded(sc, explore.Options{LockOnly: true, MaxRuns: 500, Bound: 1})
	if !r.Found {
		t.Fatalf("bounded search missed the cross-host lost wakeup: %s", r.String())
	}
	if !strings.Contains(r.Failure, "fleet deadlock") {
		t.Fatalf("unexpected failure: %s", r.Failure)
	}
	// The failing schedule replays to the identical outcome, and the
	// race checker pins the naked flag pair that caused it.
	tok := r.Schedule.Token()
	parsed, err := ParseFleetToken(tok)
	if err != nil {
		t.Fatalf("token %q: %v", tok, err)
	}
	o1 := RunFleetSchedule(sc, parsed)
	o2 := RunFleetSchedule(sc, parsed)
	if o1.Failure == "" || o1.TraceHash != o2.TraceHash {
		t.Fatalf("replay did not reproduce: %q hash %s vs %s", o1.Failure, o1.TraceHash, o2.TraceHash)
	}
	races := o1.Races()
	found := false
	for _, rc := range races {
		if rc.Loc == "ready" && strings.Contains(rc.String(), "snk/") {
			found = true
		}
	}
	if !found {
		t.Fatalf("race checker missed the host-qualified ready-flag race: %v", races)
	}
}

func TestExploreFixedVariantClean(t *testing.T) {
	sc := *FleetScenarioByName("fleet-lost-wakeup-fixed")
	r := ExploreFleetBounded(sc, explore.Options{LockOnly: true, MaxRuns: 60, Bound: 1})
	if r.Found {
		t.Fatalf("fixed variant failed under exploration: %s", r.String())
	}
	out := RunFleetSchedule(sc, FleetSchedule{})
	if n := len(out.Races()); n != 0 {
		t.Fatalf("fixed variant races: %v", out.Races())
	}
}

func TestBrokenVariantRacesOnCleanSchedule(t *testing.T) {
	// Even when the schedule happens to deliver the wakeup, the naked
	// flag handoff and the cross-host job record are racy: the write on
	// src and the read on snk have no ordering chain.
	out := RunFleetSchedule(*FleetScenarioByName("fleet-lost-wakeup"), FleetSchedule{})
	if out.Failure != "" {
		t.Fatalf("unforced run failed: %s", out.Failure)
	}
	var sawReady, sawJob bool
	for _, rc := range out.Races() {
		switch rc.Loc {
		case "ready":
			sawReady = true
		case "job":
			sawJob = true
			s := rc.String()
			if !strings.Contains(s, "src/") || !strings.Contains(s, "snk/") {
				t.Fatalf("job race is not cross-host: %s", s)
			}
		}
	}
	if !sawReady || !sawJob {
		t.Fatalf("missing races (ready=%v job=%v): %v", sawReady, sawJob, out.Races())
	}
}
