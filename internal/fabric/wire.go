package fabric

import (
	"strings"

	"pthreads/internal/net"
	"pthreads/internal/vtime"
)

// partWindow is one partition window on one wire direction.
type partWindow struct{ from, to vtime.Time }

// wire models one direction of a host pair's link: flat latency, a
// deterministic per-wire loss PRNG (data segments only; a lost segment
// redelivers one RTO later), partition windows that hold or swallow
// traffic, and a FIFO floor so segments never overtake each other. It
// implements net.Wire.
type wire struct {
	delay    vtime.Duration
	rto      vtime.Duration
	lossRate float64
	prng     uint64
	parts    []partWindow
	lastArr  vtime.Time

	// src and dst are the endpoint host ordinals; obs, when non-nil,
	// observes every segment for the fleet observability plane (counters
	// and span piggybacking — see obs.go). Observation never changes an
	// arrival instant.
	src, dst int
	obs      *fleetObs
}

// maxLossRetries bounds redelivery attempts so a Rate of 1.0 degrades
// into a drop instead of an unbounded draw loop.
const maxLossRetries = 64

func (w *wire) Arrival(dep vtime.Time, bytes int, data bool) (vtime.Time, bool) {
	at := satAdd(dep, w.delay)
	tries := 0
	if data && w.lossRate > 0 {
		for w.randFloat() < w.lossRate {
			tries++
			if tries > maxLossRetries {
				if w.obs != nil {
					w.obs.wireLost(w, tries-1)
				}
				return 0, false
			}
			at = satAdd(at, w.rto)
		}
	}
	// Partition windows, in start order: an arrival landing inside a
	// window is held to its healing instant — which may push it into a
	// later window, handled by the same forward pass.
	held := false
	for _, p := range w.parts {
		if at >= p.from && at < p.to {
			if p.to == vtime.Infinity {
				if w.obs != nil {
					w.obs.wireLost(w, tries)
				}
				return 0, false
			}
			at = p.to
			held = true
		}
	}
	if at < w.lastArr {
		at = w.lastArr // FIFO: never overtake an earlier segment
	}
	w.lastArr = at
	if w.obs != nil {
		w.obs.wireDelivered(w, dep, at, bytes, tries, held)
	}
	return at, true
}

// randFloat draws a deterministic uniform [0,1) from the wire's
// splitmix64 stream.
func (w *wire) randFloat() float64 {
	w.prng += 0x9e3779b97f4a7c15
	z := w.prng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// hostRouter implements net.Router for one host: addresses of the form
// "host:addr" resolve to the named peer's stack plus the wire pair
// between the two hosts. Anything else — no colon, an unknown host, or
// the host's own name — falls through to local delivery.
type hostRouter struct{ h *Host }

func (r *hostRouter) Route(addr string) (*net.Stack, string, net.Wire, net.Wire, uint64, bool) {
	i := strings.IndexByte(addr, ':')
	if i < 0 {
		return nil, "", nil, nil, 0, false
	}
	f := r.h.f
	tgt := f.byName[addr[:i]]
	if tgt == nil || tgt == r.h {
		return nil, "", nil, nil, 0, false
	}
	out := f.wires[[2]int{r.h.ID, tgt.ID}]
	back := f.wires[[2]int{tgt.ID, r.h.ID}]
	f.flows++
	if f.obs != nil {
		// Endpoint map for the wait-cycle watchdog: who terminates this
		// flow (see checkWaitCycle).
		f.obs.flowEnds[f.flows] = [2]int{r.h.ID, tgt.ID}
	}
	return tgt.IO.Stack(), addr[i+1:], out, back, f.flows, true
}
