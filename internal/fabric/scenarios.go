package fabric

import (
	"fmt"
	"strings"

	"pthreads/internal/core"
	"pthreads/internal/vtime"
)

// Seeded fleet scenarios for the exploration engine and the CLI: a clean
// echo fleet (replay/determinism gates) and the classic lost-wakeup bug
// stretched across two hosts — the signal that goes missing is triggered
// by a message from another machine, so finding it requires exploring
// thread interleavings *inside* one host of a multi-host run, and the
// race it leaves behind spans the wire (a datum published on one host,
// read on another, with no ordering chain when the wakeup path is
// naked).

// FleetScenarios returns the built-in scenarios.
func FleetScenarios() []Scenario {
	return []Scenario{
		FleetEchoScenario(2, 256),
		FleetLostWakeupScenario(true),
		FleetLostWakeupScenario(false),
	}
}

// FleetScenarioByName resolves a scenario (nil if unknown).
func FleetScenarioByName(name string) *Scenario {
	for _, sc := range FleetScenarios() {
		if sc.Name == name {
			sc := sc
			return &sc
		}
	}
	return nil
}

// FleetEchoScenario is the clean fixture: one server host echoes one
// message to each of n client hosts, under mild link loss and a server
// pause window, so a replay exercises the whole fault machinery. There
// is no seeded bug; every schedule must complete every echo.
func FleetEchoScenario(clients, bytes int) Scenario {
	return Scenario{
		Name: "fleet-echo",
		Desc: fmt.Sprintf("%d client hosts echo %d bytes off one server host, with loss and a server pause", clients, bytes),
		Make: func() (Config, func(f *Fabric, runErr error) string) {
			got := make([]int, clients)
			cfg := Config{
				Seed: 7,
				Pauses: []HostPause{
					{Host: "srv", From: 120 * vtime.Time(vtime.Microsecond), To: 900 * vtime.Time(vtime.Microsecond)},
				},
			}
			cfg.Hosts = append(cfg.Hosts, HostSpec{
				Name: "srv",
				Body: func(h *Host) error {
					l, err := h.IO.Listen("echo", clients)
					if err != nil {
						return err
					}
					for i := 0; i < clients; i++ {
						c, err := l.Accept()
						if err != nil {
							return err
						}
						attr := core.DefaultAttr()
						attr.Name = fmt.Sprintf("echo%d", i)
						if _, err := h.Sys.Create(attr, func(any) any {
							for {
								n, err := c.Read(bytes)
								if err != nil {
									break // EOF or reset: client finished
								}
								if _, err := c.Write(n); err != nil {
									break
								}
							}
							c.Close()
							return nil
						}, nil); err != nil {
							return err
						}
					}
					// Workers are detached from the drain's point of view:
					// the fleet ends when the clients are done.
					l2, err := h.IO.Listen("hold", 1)
					if err != nil {
						return err
					}
					_, err = l2.Accept()
					return err
				},
			})
			drain := make([]string, 0, clients)
			for i := 0; i < clients; i++ {
				i := i
				name := fmt.Sprintf("c%d", i)
				drain = append(drain, name)
				cfg.Loss = append(cfg.Loss, LinkLoss{From: name, To: "srv", Rate: 0.05})
				cfg.Hosts = append(cfg.Hosts, HostSpec{
					Name: name,
					Body: func(h *Host) error {
						c, err := h.IO.Dial("srv:echo")
						if err != nil {
							return err
						}
						if _, err := c.Write(bytes); err != nil {
							return err
						}
						for got[i] < bytes {
							n, err := c.Read(bytes)
							if err != nil {
								return err
							}
							got[i] += n
						}
						return c.Close()
					},
				})
			}
			cfg.Drain = drain
			check := func(f *Fabric, runErr error) string {
				if runErr != nil {
					return firstLine(runErr.Error())
				}
				for i, g := range got {
					if g != bytes {
						return fmt.Sprintf("client %d echoed %d bytes, expected %d", i, g, bytes)
					}
				}
				return ""
			}
			return cfg, check
		},
	}
}

// FleetLostWakeupScenario seeds a lost wakeup whose producer is a
// network arrival from another host. Host src publishes a job record
// (an annotated write to the fleet-global location "job") and sends one
// message to host snk. On snk, the receiving thread sets a hand-rolled
// ready flag and signals a condition variable; a worker thread tests the
// flag and then waits. In the broken variant both halves skip the mutex
// (test before lock, naked signal): a preemption between the worker's
// flag test and its wait lets the arrival set the flag and signal into
// empty air — the worker sleeps forever and the whole fleet deadlocks.
// The fixed variant holds the mutex on both sides and re-tests in a
// loop, which no interleaving can break; it also closes the cross-host
// ordering chain, so the job record's write on src and read on snk stop
// racing.
func FleetLostWakeupScenario(broken bool) Scenario {
	name := "fleet-lost-wakeup-fixed"
	if broken {
		name = "fleet-lost-wakeup"
	}
	const bytes = 64
	return Scenario{
		Name: name,
		Desc: "cross-host message arrival signals a condition variable" +
			map[bool]string{true: " without the mutex (lost-wakeup seed)", false: " under the mutex"}[broken],
		Make: func() (Config, func(f *Fabric, runErr error) string) {
			consumed := false
			cfg := Config{
				Hosts: []HostSpec{
					{Name: "src", Body: func(h *Host) error {
						// Connect, publish the job record, then announce
						// it over the wire. The socket bytes carry the
						// happens-before edge; the record itself crosses
						// no channel, so only a correctly ordered wakeup
						// chain on snk keeps the remote read ordered.
						c, err := h.IO.Dial("snk:data")
						if err != nil {
							return err
						}
						h.Sys.NoteWrite("job")
						if _, err := c.Write(bytes); err != nil {
							return err
						}
						return c.Close()
					}},
					{Name: "snk", Body: func(h *Host) error {
						sys := h.Sys
						ready := false
						m := sys.MustMutex(core.MutexAttr{Name: "ready"})
						cond := sys.NewCond("ready")

						attr := core.DefaultAttr()
						attr.Name = "worker"
						worker, err := sys.Create(attr, func(any) any {
							if broken {
								// Reset the flag for this round — also
								// without the mutex.
								sys.NoteWrite("ready")
								ready = false
								// The bug: flag tested before the mutex. A
								// preemption at the Lock below opens the
								// window.
								sys.NoteRead("ready")
								if !ready {
									m.Lock()
									cond.Wait(m)
									m.Unlock()
								}
							} else {
								m.Lock()
								for !ready {
									sys.NoteRead("ready")
									cond.Wait(m)
								}
								sys.NoteRead("ready")
								m.Unlock()
							}
							sys.NoteRead("job")
							consumed = true
							return nil
						}, nil)
						if err != nil {
							return err
						}

						// A pacer gives a preemption somewhere to go while
						// the message is still on the wire: parking the
						// worker at its Lock must let virtual time reach
						// the arrival.
						attr.Name = "pacer"
						pacer, err := sys.Create(attr, func(any) any {
							sys.Compute(300 * vtime.Microsecond)
							return nil
						}, nil)
						if err != nil {
							return err
						}

						l, err := h.IO.Listen("data", 1)
						if err != nil {
							return err
						}
						c, err := l.Accept()
						if err != nil {
							return err
						}
						for n := 0; n < bytes; {
							r, err := c.Read(bytes)
							if err != nil {
								return err
							}
							n += r
						}
						c.Close()
						if broken {
							// Naked notify: set-and-signal with no mutex.
							sys.NoteWrite("ready")
							ready = true
							cond.Signal()
						} else {
							m.Lock()
							sys.NoteWrite("ready")
							ready = true
							cond.Signal()
							m.Unlock()
						}
						sys.Join(worker)
						sys.Join(pacer)
						return nil
					}},
				},
			}
			check := func(f *Fabric, runErr error) string {
				if runErr != nil {
					return firstLine(runErr.Error())
				}
				if !consumed {
					return "worker never consumed the job"
				}
				return ""
			}
			return cfg, check
		},
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
