// The fleet observability plane (DESIGN.md §14): distributed spans
// stitched across hosts by wire-message piggybacking, per-host wire and
// grant counters rolled up into fleet snapshots at virtual-time
// intervals, and watchdogs over the coordinator's own vantage point —
// grant starvation, oversized single-turn advances, and cross-host wait
// cycles among fully idle hosts. Everything here observes and never
// charges: no virtual clock moves because observability is on, so every
// schedule, fingerprint, and golden artifact is byte-identical with the
// plane enabled or disabled, and the plane's own output is byte-identical
// across runs (gated by verify.sh with a double-run cmp).
package fabric

import (
	"fmt"
	"sort"
	"strings"

	"pthreads/internal/metrics"
	"pthreads/internal/net"
	"pthreads/internal/obs"
	"pthreads/internal/vtime"
)

// ObsConfig enables the observability plane. The zero value disables
// everything (the fabric then holds no plane state at all).
type ObsConfig struct {
	// Spans records a distributed span per jacket call on every host and
	// piggybacks trace context on every wire message.
	Spans bool
	// Rollup samples per-host gauges (run-queue depth, fd-wait
	// occupancy, clock) at Interval of fleet virtual time and
	// accumulates per-pair and fleet-wide wire-latency histograms.
	Rollup bool
	// Interval between rollup samples (default 1ms).
	Interval vtime.Duration
	// GrantStarvation fires a finding when a host's clock at grant lags
	// the fleet's maximum clock by more than this (0 = off). A paused or
	// partitioned-off host shows up here first.
	GrantStarvation vtime.Duration
	// LeaseHold fires a finding when a single turn advances one host's
	// clock by more than this (0 = off): the host held the fleet's
	// attention — a long free-run under one lease — for that long.
	LeaseHold vtime.Duration
	// WaitCycle detects cycles of hosts that are all fully idle
	// (nothing runnable, nothing pending) and fd-blocked on flows
	// terminating at each other — a subset deadlock the fleet-wide
	// check cannot see while other hosts still run.
	WaitCycle bool
}

func (c ObsConfig) enabled() bool {
	return c.Spans || c.Rollup || c.GrantStarvation > 0 || c.LeaseHold > 0 || c.WaitCycle
}

func (c ObsConfig) withDefaults() ObsConfig {
	if c.Interval <= 0 {
		c.Interval = vtime.Millisecond
	}
	return c
}

// HostWireStats counts one host's cross-host traffic, attributed to the
// sending host.
type HostWireStats struct {
	Msgs        int64 // messages handed to the wire
	Bytes       int64 // payload bytes among them
	Retransmits int64 // lost data segments redelivered one RTO later
	PartHeld    int64 // segments held to a partition's healing instant
	PartDropped int64 // segments swallowed forever
}

// HostGrantStats summarizes the coordinator's view of one host.
type HostGrantStats struct {
	Grants  int64          // turns granted
	MaxLag  vtime.Duration // worst clock lag behind the fleet max at grant
	MaxTurn vtime.Duration // largest single-turn virtual advance

	// Coordinator-internal turn tracking.
	lastGrant vtime.Time
	granted   bool
}

// HostGauge is one host's sampled gauges.
type HostGauge struct {
	Now    vtime.Time // host clock at the sample
	Ready  int        // run-queue depth
	FDWait int        // threads suspended in fd jackets
	Done   bool       // host already completed
}

// RollupSample is one fleet-wide gauge sample.
type RollupSample struct {
	At    vtime.Time
	Hosts []HostGauge
}

// FleetFinding is one watchdog diagnosis.
type FleetFinding struct {
	Kind   string // "grant-starvation", "lease-hold", "wait-cycle"
	Host   string // primary host ("" for fleet-wide findings)
	At     vtime.Time
	Detail string
}

// fleetObs is the coordinator-side state of the plane. All of it is
// touched only from the coordinator goroutine or from a host while it
// holds the fleet's single running turn, so no locking is needed.
type fleetObs struct {
	cfg  ObsConfig
	recs []*obs.Recorder // per-host span recorders; nil unless Spans
	msgs []obs.WireMsg   // every wire message, in send order (Spans)

	wire     []HostWireStats
	grants   []HostGrantStats
	pairLat  map[[2]int]*metrics.Histogram
	fleetLat metrics.Histogram

	samples    []RollupSample
	nextSample vtime.Time

	findings   []FleetFinding
	starved    []bool
	leaseFired []bool
	flowEnds   map[uint64][2]int // flow -> (src host, dst host)
	lastStuck  uint64            // memo of the last checked stuck-set
	seenCycle  map[string]bool
}

func newFleetObs(cfg ObsConfig, nHosts int) *fleetObs {
	cfg = cfg.withDefaults()
	o := &fleetObs{
		cfg:        cfg,
		wire:       make([]HostWireStats, nHosts),
		grants:     make([]HostGrantStats, nHosts),
		pairLat:    make(map[[2]int]*metrics.Histogram),
		nextSample: vtime.Time(cfg.Interval),
		starved:    make([]bool, nHosts),
		leaseFired: make([]bool, nHosts),
		flowEnds:   make(map[uint64][2]int),
		seenCycle:  make(map[string]bool),
	}
	return o
}

// wireDelivered accounts one delivered segment.
func (o *fleetObs) wireDelivered(w *wire, dep, at vtime.Time, bytes, retries int, held bool) {
	s := &o.wire[w.src]
	s.Msgs++
	s.Bytes += int64(bytes)
	s.Retransmits += int64(retries)
	if held {
		s.PartHeld++
	}
	if o.cfg.Rollup {
		d := at.Sub(dep)
		o.fleetLat.Record(d)
		key := [2]int{w.src, w.dst}
		h := o.pairLat[key]
		if h == nil {
			h = &metrics.Histogram{}
			o.pairLat[key] = h
		}
		h.Record(d)
	}
}

// wireLost accounts a segment that never arrives.
func (o *fleetObs) wireLost(w *wire, retries int) {
	s := &o.wire[w.src]
	s.Msgs++
	s.Retransmits += int64(retries)
	s.PartDropped++
}

// onGrant runs at every coordinator grant, while all live hosts are
// parked: count the turn, track the host's lag behind the fleet max,
// and fire the starvation watchdog.
func (o *fleetObs) onGrant(f *Fabric, h *Host, grant vtime.Time) {
	g := &o.grants[h.ID]
	g.Grants++
	var maxNow vtime.Time
	for _, x := range f.hosts {
		if !x.done && x.now > maxNow {
			maxNow = x.now
		}
	}
	lag := maxNow.Sub(h.now)
	if lag > g.MaxLag {
		g.MaxLag = lag
	}
	if o.cfg.GrantStarvation > 0 && lag > o.cfg.GrantStarvation && !o.starved[h.ID] {
		o.starved[h.ID] = true
		o.findings = append(o.findings, FleetFinding{
			Kind: "grant-starvation", Host: h.Name, At: maxNow,
			Detail: fmt.Sprintf("clock %d lags fleet max %d by %d (threshold %d)",
				h.now, maxNow, lag, o.cfg.GrantStarvation),
		})
	}
	g.lastGrant, g.granted = grant, true
}

// onPark runs when a host parks back: the turn it just finished
// advanced its clock from the granted frontier to now.
func (o *fleetObs) onPark(h *Host, now vtime.Time) {
	g := &o.grants[h.ID]
	if !g.granted {
		return
	}
	g.granted = false
	adv := now.Sub(g.lastGrant)
	if adv < 0 {
		adv = 0
	}
	if adv > g.MaxTurn {
		g.MaxTurn = adv
	}
	if o.cfg.LeaseHold > 0 && adv > o.cfg.LeaseHold && !o.leaseFired[h.ID] {
		o.leaseFired[h.ID] = true
		o.findings = append(o.findings, FleetFinding{
			Kind: "lease-hold", Host: h.Name, At: now,
			Detail: fmt.Sprintf("one turn advanced the host by %d (threshold %d)",
				adv, o.cfg.LeaseHold),
		})
	}
}

// sampleAt takes a rollup sample when fleet time crosses the next
// boundary. Called with every live host parked, at the fleet-wide
// next-action bound e, so reading the parked hosts' systems is safe
// (the park channel send established happens-before).
func (o *fleetObs) sampleAt(f *Fabric, e vtime.Time) {
	if !o.cfg.Rollup || e == vtime.Infinity || e < o.nextSample {
		return
	}
	s := RollupSample{At: e, Hosts: make([]HostGauge, len(f.hosts))}
	for i, h := range f.hosts {
		g := &s.Hosts[i]
		if h.done {
			g.Done = true
			continue
		}
		g.Now = h.now
		g.Ready = h.Sys.ReadyDepth()
		g.FDWait = h.Sys.FDWaitingNow()
	}
	o.samples = append(o.samples, s)
	// Next boundary strictly after e: a fleet fast-forward skips the
	// boundaries inside the jump instead of stamping them all.
	iv := uint64(o.cfg.Interval)
	o.nextSample = vtime.Time((uint64(e)/iv + 1) * iv)
}

// checkWaitCycle looks for a cycle among fully idle hosts (nothing
// runnable, nothing pending) whose fd-blocked calls wait on flows
// terminating at each other. Such a subset can never make progress on
// its own, yet the fleet-wide deadlock check stays silent while any
// other host still runs. Memoized on the stuck-set so the scan runs
// only when the set changes.
func (o *fleetObs) checkWaitCycle(f *Fabric) {
	if !o.cfg.WaitCycle {
		return
	}
	var mask uint64
	for _, h := range f.hosts {
		if !h.done && h.parked && h.ID < 64 && h.eff() == vtime.Infinity {
			mask |= 1 << uint(h.ID)
		}
	}
	if mask == o.lastStuck {
		return
	}
	o.lastStuck = mask
	if mask == 0 {
		return
	}
	// Wait edges: stuck host -> peer of a flow one of its threads is
	// fd-blocked on, kept only when the peer is stuck too.
	edges := make(map[int][]int)
	for _, h := range f.hosts {
		if mask&(1<<uint(h.ID)) == 0 {
			continue
		}
		for _, fl := range blockedFlows(h.Sys.BlockedReport()) {
			ends, ok := o.flowEnds[fl]
			if !ok {
				continue
			}
			peer := ends[0]
			if peer == h.ID {
				peer = ends[1]
			}
			if peer != h.ID && mask&(1<<uint(peer)) != 0 {
				edges[h.ID] = append(edges[h.ID], peer)
			}
		}
	}
	cyc := findCycle(edges)
	if cyc == nil {
		return
	}
	names := make([]string, len(cyc))
	for i, id := range cyc {
		names[i] = f.hosts[id].Name
	}
	key := strings.Join(names, ">")
	if o.seenCycle[key] {
		return
	}
	o.seenCycle[key] = true
	var maxNow vtime.Time
	for _, id := range cyc {
		if f.hosts[id].now > maxNow {
			maxNow = f.hosts[id].now
		}
	}
	o.findings = append(o.findings, FleetFinding{
		Kind: "wait-cycle", Host: names[0], At: maxNow,
		Detail: "hosts wait on each other's flows: " + strings.Join(names, " -> ") + " -> " + names[0],
	})
}

// blockedFlows extracts the flow ids ("#fN") a host's blocked-thread
// report references — the fd-wait labels of cross-host jackets leak
// them ("read sock5->r0:echo#f3").
func blockedFlows(report string) []uint64 {
	var out []uint64
	for i := 0; ; {
		j := strings.Index(report[i:], "#f")
		if j < 0 {
			return out
		}
		i += j + 2
		var n uint64
		ok := false
		for i < len(report) && report[i] >= '0' && report[i] <= '9' {
			n = n*10 + uint64(report[i]-'0')
			i++
			ok = true
		}
		if ok {
			out = append(out, n)
		}
	}
}

// findCycle returns one cycle in the wait digraph (vertex ids, rotated
// so the smallest id leads), or nil. Deterministic: vertices and edges
// are visited in sorted insertion order.
func findCycle(edges map[int][]int) []int {
	verts := make([]int, 0, len(edges))
	for v := range edges {
		verts = append(verts, v)
	}
	sort.Ints(verts)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int)
	var stack []int
	var cycle []int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		color[v] = gray
		stack = append(stack, v)
		for _, w := range edges[v] {
			switch color[w] {
			case gray:
				// Found: slice the stack from w's position.
				for i, x := range stack {
					if x == w {
						cycle = append(cycle, stack[i:]...)
						return true
					}
				}
			case white:
				if dfs(w) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[v] = black
		return false
	}
	for _, v := range verts {
		if color[v] == white && dfs(v) {
			break
		}
	}
	if cycle == nil {
		return nil
	}
	// Rotate the smallest id to the front for a canonical key.
	min := 0
	for i, v := range cycle {
		if v < cycle[min] {
			min = i
		}
	}
	out := make([]int, 0, len(cycle))
	out = append(out, cycle[min:]...)
	out = append(out, cycle[:min]...)
	return out
}

// teardown closes dangling spans with each host's final clock.
func (o *fleetObs) teardown(f *Fabric) {
	for i, r := range o.recs {
		if r != nil {
			r.CloseDangling(f.hosts[i].Sys.Clock().Now())
		}
	}
}

// PairLatency is one directed host pair's wire-latency histogram.
type PairLatency struct {
	Src, Dst string
	Hist     metrics.Histogram
}

// ObsReport is the assembled output of the plane for one fleet run.
type ObsReport struct {
	Hosts    []string
	Wire     []HostWireStats
	Grants   []HostGrantStats
	PairLat  []PairLatency
	FleetLat metrics.Histogram
	Interval vtime.Duration
	Samples  []RollupSample
	Findings []FleetFinding
	// Spans holds each host's recorded spans (ID order), Msgs every
	// wire message in send order; both empty unless ObsConfig.Spans.
	Spans [][]obs.Span
	Msgs  []obs.WireMsg
}

// ObsReport assembles the plane's report (nil when the plane is off).
// Call after Run.
func (f *Fabric) ObsReport() *ObsReport {
	o := f.obs
	if o == nil {
		return nil
	}
	r := &ObsReport{
		Wire:     o.wire,
		Grants:   o.grants,
		FleetLat: o.fleetLat,
		Interval: o.cfg.Interval,
		Samples:  o.samples,
		Findings: o.findings,
		Msgs:     o.msgs,
	}
	for _, h := range f.hosts {
		r.Hosts = append(r.Hosts, h.Name)
	}
	keys := make([][2]int, 0, len(o.pairLat))
	for k := range o.pairLat {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, k := range keys {
		r.PairLat = append(r.PairLat, PairLatency{
			Src: f.hosts[k[0]].Name, Dst: f.hosts[k[1]].Name, Hist: *o.pairLat[k],
		})
	}
	for _, rec := range o.recs {
		if rec != nil {
			r.Spans = append(r.Spans, rec.Spans())
		}
	}
	return r
}

// SpanRecorder returns one host's span recorder (nil unless
// ObsConfig.Spans).
func (f *Fabric) SpanRecorder(host int) *obs.Recorder {
	if f.obs == nil || f.obs.recs == nil {
		return nil
	}
	return f.obs.recs[host]
}

// Format renders the report as the deterministic text section ptreport
// -fleet prints.
func (r *ObsReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet observability (%d hosts)\n", len(r.Hosts))
	b.WriteString("\n  wire traffic (per sending host)\n")
	b.WriteString("  host        msgs    bytes  retrans  part-held  part-drop\n")
	for i, name := range r.Hosts {
		w := r.Wire[i]
		fmt.Fprintf(&b, "  %-9s %6d %8d %8d %10d %10d\n",
			name, w.Msgs, w.Bytes, w.Retransmits, w.PartHeld, w.PartDropped)
	}
	b.WriteString("\n  coordinator grants\n")
	b.WriteString("  host       grants   max-lag-vus  max-turn-vus\n")
	for i, name := range r.Hosts {
		g := r.Grants[i]
		fmt.Fprintf(&b, "  %-9s %7d %13d %13d\n", name, g.Grants, int64(g.MaxLag), int64(g.MaxTurn))
	}
	if r.FleetLat.Count > 0 {
		b.WriteString("\n  wire latency (virtual)\n")
		fmt.Fprintf(&b, "  fleet: n=%d p50=%d p99=%d max=%d\n",
			r.FleetLat.Count, int64(r.FleetLat.Quantile(0.50)),
			int64(r.FleetLat.Quantile(0.99)), int64(r.FleetLat.Max))
		for _, p := range r.PairLat {
			fmt.Fprintf(&b, "  %s->%s: n=%d p50=%d p99=%d max=%d\n",
				p.Src, p.Dst, p.Hist.Count, int64(p.Hist.Quantile(0.50)),
				int64(p.Hist.Quantile(0.99)), int64(p.Hist.Max))
		}
	}
	if len(r.Samples) > 0 {
		b.WriteString("\n  rollups\n")
		fmt.Fprintf(&b, "  %d samples at %dns intervals; per-host peaks over the run:\n",
			len(r.Samples), int64(r.Interval))
		b.WriteString("  host      max-ready  max-fdwait\n")
		for i, name := range r.Hosts {
			maxReady, maxFD := 0, 0
			for _, s := range r.Samples {
				g := s.Hosts[i]
				if g.Ready > maxReady {
					maxReady = g.Ready
				}
				if g.FDWait > maxFD {
					maxFD = g.FDWait
				}
			}
			fmt.Fprintf(&b, "  %-9s %9d %11d\n", name, maxReady, maxFD)
		}
	}
	if len(r.Spans) > 0 {
		total, traces := 0, make(map[uint64]bool)
		for _, hs := range r.Spans {
			total += len(hs)
			for _, sp := range hs {
				traces[sp.Trace] = true
			}
		}
		crossed := 0
		for _, m := range r.Msgs {
			if m.Delivered && m.Trace != 0 {
				crossed++
			}
		}
		b.WriteString("\n  spans\n")
		fmt.Fprintf(&b, "  %d spans in %d traces; %d wire messages (%d carrying trace context)\n",
			total, len(traces), len(r.Msgs), crossed)
	}
	b.WriteString("\n  watchdog findings\n")
	if len(r.Findings) == 0 {
		b.WriteString("  none\n")
	}
	for _, fd := range r.Findings {
		fmt.Fprintf(&b, "  [%s] host=%s at=%d: %s\n", fd.Kind, fd.Host, int64(fd.At), fd.Detail)
	}
	return b.String()
}

// CarrySpan implements net.SpanWire: the fabric's wires observe every
// cross-host message for the plane, minting a deterministic message id
// from the sending host's recorder and depositing the carried context
// on the receiving host's, where the next Accept/Read on the flow
// adopts it. Unreachable unless spans are enabled (the jacket only
// brackets sends with a context when a recorder is attached, and the
// recs guard below makes stray calls free).
func (w *wire) CarrySpan(flow uint64, ctx net.SpanCtx, dep, at vtime.Time, delivered bool, bytes int, kind string) {
	o := w.obs
	if o == nil || o.recs == nil {
		return
	}
	src := o.recs[w.src]
	m := obs.WireMsg{
		Msg: src.MintID(dep), Flow: flow, Src: w.src, Dst: w.dst,
		Trace: ctx.Trace, Span: ctx.Span, Dep: dep, At: at,
		Bytes: bytes, Kind: kind, Delivered: delivered,
	}
	if ctx.Span != 0 {
		if tid, ok := src.ThreadOf(ctx.Span); ok {
			m.SrcThread = tid
		}
	}
	o.msgs = append(o.msgs, m)
	if delivered && ctx.Trace != 0 {
		o.recs[w.dst].Deliver(flow, ctx.Trace, ctx.Span, m.Msg)
	}
}
