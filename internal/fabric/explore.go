// Fleet-wide schedule exploration: record/replay and bounded search
// across a whole virtual datacenter. The stable coordinate of one
// scheduling decision is (host, per-host switch-point ordinal) — the
// global interleaving of hosts is fixed by the fabric's deterministic
// turn rule, so forcing the same per-host decisions reproduces the same
// fleet run bit for bit. Tokens are the single-host format qualified by
// host: "f1:h0/12/1,h2/40/0".
package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"pthreads/internal/core"
	"pthreads/internal/explore"
)

// FleetDecision is one forced switch on one host: at the Index'th switch
// point host Host observes, preempt and dispatch the Pick'th ready
// thread.
type FleetDecision struct {
	Host  int
	Index int
	Pick  int
}

// FleetSchedule is the replayable token of one fleet interleaving.
type FleetSchedule struct {
	Decisions []FleetDecision
}

const fleetTokenPrefix = "f1:"

// Token renders the schedule, e.g. "f1:h0/12/1,h2/40/0".
func (s FleetSchedule) Token() string {
	var b strings.Builder
	b.WriteString(fleetTokenPrefix)
	for i, d := range s.Decisions {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "h%d/%d/%d", d.Host, d.Index, d.Pick)
	}
	return b.String()
}

// ParseFleetToken decodes a token produced by Token.
func ParseFleetToken(tok string) (FleetSchedule, error) {
	if !strings.HasPrefix(tok, fleetTokenPrefix) {
		return FleetSchedule{}, fmt.Errorf("fabric: fleet schedule token must start with %q", fleetTokenPrefix)
	}
	body := strings.TrimPrefix(tok, fleetTokenPrefix)
	if body == "" {
		return FleetSchedule{}, nil
	}
	var out FleetSchedule
	for _, part := range strings.Split(body, ",") {
		var h, i, p int
		if n, err := fmt.Sscanf(part, "h%d/%d/%d", &h, &i, &p); n != 3 || err != nil {
			return FleetSchedule{}, fmt.Errorf("fabric: malformed fleet decision %q (want hH/index/pick)", part)
		}
		if h < 0 || i < 0 || p < 0 {
			return FleetSchedule{}, fmt.Errorf("fabric: negative field in %q", part)
		}
		out.Decisions = append(out.Decisions, FleetDecision{Host: h, Index: i, Pick: p})
	}
	return out, nil
}

// FleetPointInfo is one switch point seen past the forced prefix.
type FleetPointInfo struct {
	Host   int
	Index  int
	Kind   core.SwitchPoint
	NReady int
}

// fleetCtl shares the decision log across every host's controller; the
// forced prefix is split per host (the per-host ordinal is the stable
// half of the coordinate) while the log accumulates in fleet execution
// order, which the deterministic turn rule makes reproducible.
type fleetCtl struct {
	perHost map[int][]FleetDecision
	log     []FleetDecision
	points  []FleetPointInfo
	ctls    []*hostCtl
}

func newFleetCtl(forced []FleetDecision) *fleetCtl {
	fc := &fleetCtl{perHost: make(map[int][]FleetDecision)}
	for _, d := range forced {
		fc.perHost[d.Host] = append(fc.perHost[d.Host], d)
	}
	return fc
}

// forHost mints the core.Explorer for one host.
func (fc *fleetCtl) forHost(host int) core.Explorer {
	hc := &hostCtl{fc: fc, host: host, forced: fc.perHost[host]}
	fc.ctls = append(fc.ctls, hc)
	return hc
}

// hostCtl is one host's view of the shared controller; it mirrors the
// single-host explore controller, with clamped picks on divergence.
type hostCtl struct {
	fc     *fleetCtl
	host   int
	forced []FleetDecision
	idx    int
	cursor int
}

func (hc *hostCtl) ChooseAt(point core.SwitchPoint, cur core.ThreadID, ready []core.ThreadID) (int, bool) {
	i := hc.idx
	hc.idx++
	if hc.cursor < len(hc.forced) {
		d := hc.forced[hc.cursor]
		if d.Index != i {
			return 0, false
		}
		hc.cursor++
		if len(ready) == 0 {
			return 0, false
		}
		pick := d.Pick
		if pick >= len(ready) {
			pick = len(ready) - 1
		}
		hc.fc.log = append(hc.fc.log, FleetDecision{Host: hc.host, Index: i, Pick: pick})
		return pick, true
	}
	hc.fc.points = append(hc.fc.points, FleetPointInfo{Host: hc.host, Index: i, Kind: point, NReady: len(ready)})
	return 0, false
}

// Scenario is a fleet workload the exploration engine can run
// repeatedly. Make builds a fresh fleet configuration and a check
// evaluated after the run ("" = clean).
type Scenario struct {
	Name string
	Desc string
	Make func() (Config, func(f *Fabric, runErr error) string)
}

// FleetOutcome is one scenario run's result.
type FleetOutcome struct {
	Failure     string
	RunErr      error
	Schedule    FleetSchedule
	Points      []FleetPointInfo
	Fingerprint string
	// TraceHash fingerprints every host's rendered trace plus the
	// schedule fingerprint; equal hashes mean byte-identical fleet runs.
	TraceHash string
	// PerHost holds each host's trace (ID order), HostNames its names,
	// HostEnds each host's final clock (virtual ns) — the instant that
	// closes any state interval still open in an export.
	PerHost   [][]core.TraceEvent
	HostNames []string
	HostEnds  []int64
	// Obs is the observability-plane report, nil unless the run was
	// made with RunFleetScheduleObs.
	Obs *ObsReport
}

// Races runs the fleet race checker over the outcome's traces.
func (o FleetOutcome) Races() []explore.Race {
	return explore.CheckFleetRaces(o.PerHost, o.HostNames)
}

// RunFleetSchedule executes the scenario once under a forced schedule
// (empty = the unperturbed run).
func RunFleetSchedule(sc Scenario, sched FleetSchedule) FleetOutcome {
	return RunFleetScheduleObs(sc, sched, ObsConfig{})
}

// RunFleetScheduleObs is RunFleetSchedule with the observability plane
// attached; oc's zero value reproduces RunFleetSchedule exactly (the
// plane never perturbs a schedule either way — that is its contract).
func RunFleetScheduleObs(sc Scenario, sched FleetSchedule, oc ObsConfig) FleetOutcome {
	cfg, check := sc.Make()
	ctl := newFleetCtl(sched.Decisions)
	cfg.explorer = ctl
	cfg.Trace = true
	cfg.Obs = oc
	f, err := New(cfg)
	if err != nil {
		return FleetOutcome{Failure: "bad fleet config: " + err.Error(), RunErr: err}
	}
	runErr := f.Run()
	h := sha256.New()
	out := FleetOutcome{
		RunErr:      runErr,
		Schedule:    FleetSchedule{Decisions: ctl.log},
		Points:      ctl.points,
		Fingerprint: f.Fingerprint(),
	}
	fmt.Fprintf(h, "fingerprint %s\n", f.Fingerprint())
	for _, host := range f.Hosts() {
		out.PerHost = append(out.PerHost, host.TraceEvents())
		out.HostNames = append(out.HostNames, host.Name)
		out.HostEnds = append(out.HostEnds, int64(host.Sys.Clock().Now()))
		fmt.Fprintf(h, "host %s\n", host.Name)
		for _, ev := range host.TraceEvents() {
			fmt.Fprintf(h, "%d %s %s %s %s %s\n", ev.At, ev.Kind, evThreadName(ev), ev.Obj, ev.Arg, ev.Detail)
		}
	}
	out.TraceHash = hex.EncodeToString(h.Sum(nil)[:8])
	out.Obs = f.ObsReport()
	out.Failure = check(f, runErr)
	return out
}

func evThreadName(ev core.TraceEvent) string {
	if ev.Thread == nil {
		return "-"
	}
	if n := ev.Thread.Name(); n != "" {
		return n
	}
	return "thread#" + strconv.Itoa(int(ev.Thread.ID()))
}

// FleetResult summarizes a fleet exploration.
type FleetResult struct {
	Found    bool
	Failure  string
	Schedule FleetSchedule
	Runs     int
}

// String renders the result in one line.
func (r FleetResult) String() string {
	if !r.Found {
		return fmt.Sprintf("fleet bounded: clean after %d runs", r.Runs)
	}
	return fmt.Sprintf("fleet bounded: FAILURE after %d runs: %s\n  schedule %s", r.Runs, r.Failure, r.Schedule.Token())
}

// ExploreFleetBounded is the CHESS-style bounded-preemption search over
// a whole fleet: each run replays a forced prefix and records the switch
// points seen past it on every host; the frontier extends with each
// (host, point, pick) alternative. Runs are sequential — one fleet
// already runs a goroutine per simulated thread across every host.
func ExploreFleetBounded(sc Scenario, o explore.Options) FleetResult {
	if o.MaxRuns <= 0 {
		o.MaxRuns = 500
	}
	if o.Bound <= 0 {
		o.Bound = 1
	}
	queue := [][]FleetDecision{nil}
	head := 0
	runs := 0
	for head < len(queue) && runs < o.MaxRuns {
		prefix := queue[head]
		queue[head] = nil
		head++
		runs++
		out := RunFleetSchedule(sc, FleetSchedule{Decisions: prefix})
		if out.Failure != "" {
			return FleetResult{Found: true, Failure: out.Failure, Schedule: out.Schedule, Runs: runs}
		}
		if len(prefix) >= o.Bound {
			continue
		}
		for _, pt := range out.Points {
			if pt.NReady == 0 {
				continue
			}
			if o.LockOnly && pt.Kind != core.PointLock {
				continue
			}
			for pick := 0; pick < pt.NReady; pick++ {
				ext := make([]FleetDecision, len(prefix), len(prefix)+1)
				ext = append(ext[:copy(ext, prefix)], FleetDecision{Host: pt.Host, Index: pt.Index, Pick: pick})
				queue = append(queue, ext)
			}
		}
	}
	return FleetResult{Runs: runs}
}
