package pthreads_test

import (
	"strings"
	"testing"

	"pthreads"
)

// These tests exercise the library exclusively through the public facade,
// the way a downstream user would.

func TestFacadeQuickstart(t *testing.T) {
	sys := pthreads.New(pthreads.Config{})
	var result any
	err := sys.Run(func() {
		attr := pthreads.DefaultAttr()
		attr.Name = "worker"
		th, err := sys.Create(attr, func(arg any) any {
			sys.Compute(pthreads.Millisecond)
			return arg.(int) * 2
		}, 21)
		if err != nil {
			t.Errorf("Create: %v", err)
		}
		result, err = sys.Join(th)
		if err != nil {
			t.Errorf("Join: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if result != 42 {
		t.Fatalf("result = %v", result)
	}
}

func TestFacadeConstants(t *testing.T) {
	if pthreads.MinPrio != 0 || pthreads.MaxPrio != 31 {
		t.Fatal("priority range wrong")
	}
	if pthreads.SchedFIFO.String() != "SCHED_FIFO" || pthreads.SchedRR.String() != "SCHED_RR" {
		t.Fatal("policy names wrong")
	}
	if pthreads.ProtocolCeiling.String() != "ceiling" {
		t.Fatal("protocol name wrong")
	}
	if pthreads.EDEADLK.Error() != "EDEADLK" {
		t.Fatal("errno name wrong")
	}
	if !pthreads.FullSigset().Has(pthreads.SIGUSR1) {
		t.Fatal("FullSigset wrong")
	}
	set := pthreads.MakeSigset(pthreads.SIGINT, pthreads.SIGTERM)
	if !set.Has(pthreads.SIGINT) || set.Has(pthreads.SIGHUP) {
		t.Fatal("MakeSigset wrong")
	}
}

func TestFacadeMachinePresets(t *testing.T) {
	ipx := pthreads.SPARCstationIPX()
	one := pthreads.SPARCstation1Plus()
	if !strings.Contains(ipx.Name, "IPX") || !strings.Contains(one.Name, "1+") {
		t.Fatal("preset names wrong")
	}
	sys := pthreads.New(pthreads.Config{Machine: one})
	err := sys.Run(func() {
		if sys.Config().Machine != one {
			t.Error("machine not configured")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSemaphore(t *testing.T) {
	sys := pthreads.New(pthreads.Config{})
	err := sys.Run(func() {
		sem, err := pthreads.NewSemaphore(sys, "s", 1)
		if err != nil {
			t.Errorf("NewSemaphore: %v", err)
			return
		}
		sem.P()
		sem.V()
		if sem.Value() != 1 {
			t.Errorf("Value = %d", sem.Value())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSignalsAndCancellation(t *testing.T) {
	sys := pthreads.New(pthreads.Config{})
	var sawSignal pthreads.Signal
	err := sys.Run(func() {
		sys.Sigaction(pthreads.SIGUSR1, func(sig pthreads.Signal, info *pthreads.SigInfo, sc *pthreads.SigContext) {
			sawSignal = sig
		}, 0)
		sys.Kill(sys.Self(), pthreads.SIGUSR1)

		attr := pthreads.DefaultAttr()
		attr.Priority = pthreads.DefaultPrio + 1
		th, _ := sys.Create(attr, func(any) any {
			sys.Sleep(pthreads.Second)
			return nil
		}, nil)
		sys.Cancel(th)
		v, _ := sys.Join(th)
		if v != pthreads.Canceled {
			t.Errorf("cancelled status = %v", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawSignal != pthreads.SIGUSR1 {
		t.Fatalf("handler saw %v", sawSignal)
	}
}

func TestFacadeTracer(t *testing.T) {
	var events []pthreads.TraceEvent
	type recorder struct{ f func(pthreads.TraceEvent) }
	_ = recorder{}
	sys := pthreads.New(pthreads.Config{Tracer: tracerFunc(func(ev pthreads.TraceEvent) {
		events = append(events, ev)
	})})
	err := sys.Run(func() {
		sys.Tracepoint("hello")
		sys.Yield()
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range events {
		if ev.Arg == "hello" {
			found = true
		}
	}
	if !found {
		t.Fatal("tracepoint not recorded")
	}
}

// tracerFunc adapts a function to the Tracer interface.
type tracerFunc func(pthreads.TraceEvent)

func (f tracerFunc) Event(ev pthreads.TraceEvent) { f(ev) }

func TestFacadeTimeUnits(t *testing.T) {
	d := 3 * pthreads.Millisecond
	if d.Micros() != 3000 {
		t.Fatalf("Micros = %v", d.Micros())
	}
	if pthreads.Second != 1000*pthreads.Millisecond {
		t.Fatal("units wrong")
	}
}

func TestFacadePervertedConfig(t *testing.T) {
	sys := pthreads.New(pthreads.Config{Pervert: pthreads.PervertRandom, Seed: 5})
	count := 0
	err := sys.Run(func() {
		m := sys.MustMutex(pthreads.MutexAttr{Name: "m", Protocol: pthreads.ProtocolInherit})
		attr := pthreads.DefaultAttr()
		var ths []*pthreads.Thread
		for i := 0; i < 3; i++ {
			th, _ := sys.Create(attr, func(any) any {
				for j := 0; j < 5; j++ {
					m.Lock()
					count++
					m.Unlock()
				}
				return nil
			}, nil)
			ths = append(ths, th)
		}
		for _, th := range ths {
			sys.Join(th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 15 {
		t.Fatalf("count = %d", count)
	}
}

func TestFacadeMultipleIndependentSystems(t *testing.T) {
	// Two systems run back to back with fully isolated state.
	mk := func() pthreads.Time {
		sys := pthreads.New(pthreads.Config{})
		sys.Run(func() {
			sys.Compute(5 * pthreads.Millisecond)
		})
		return sys.Now()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("isolated systems diverged: %v vs %v", a, b)
	}
}
