// Package pthreads is a library implementation of POSIX 1003.4a (Draft 6)
// threads, reproducing Mueller's USENIX 1993 paper "A Library
// Implementation of POSIX Threads under UNIX" as a deterministic
// simulation in pure Go.
//
// The library implements user-level threads with no kernel thread
// support: a monolithic-monitor library kernel, a priority dispatcher,
// preemptive SCHED_FIFO and time-sliced SCHED_RR scheduling, mutexes with
// the priority-inheritance and priority-ceiling (SRP) protocols,
// condition variables, counting semaphores, thread-specific data, cleanup
// handlers, a full per-thread signal model (universal handler, recipient
// and action rules, fake calls, sigwait), cancellation with
// interruptibility states, setjmp/longjmp, and the paper's "perverted
// scheduling" debug policies.
//
// Because the Go runtime owns real machine context switching and signal
// delivery, the library runs its threads on a simulated uniprocessor:
// every thread is a goroutine, but a strict baton-passing discipline
// keeps exactly one runnable at any instant, and a virtual clock with a
// SPARC-calibrated cost model accounts the latency of every operation.
// Programs model their computation with Compute and their I/O with Sleep
// and AioRead; everything else — scheduling, synchronization, signals —
// behaves and costs as it did in the paper's implementation.
//
// # Quick start
//
//	sys := pthreads.New(pthreads.Config{})
//	err := sys.Run(func() {
//		attr := pthreads.DefaultAttr()
//		attr.Name = "worker"
//		t, _ := sys.Create(attr, func(arg any) any {
//			sys.Compute(5 * pthreads.Millisecond)
//			return arg.(int) * 2
//		}, 21)
//		v, _ := sys.Join(t)
//		fmt.Println(v) // 42
//	})
//
// Each System is an independent simulated process; tests and benchmarks
// can run many concurrently.
package pthreads

import (
	"pthreads/internal/core"
	"pthreads/internal/hw"
	ptio "pthreads/internal/io"
	"pthreads/internal/net"
	"pthreads/internal/sched"
	"pthreads/internal/sem"
	"pthreads/internal/unixkern"
	"pthreads/internal/vtime"
)

// Core types, re-exported.
type (
	// System is one instance of the thread library: one simulated
	// process on one simulated uniprocessor.
	System = core.System
	// Config parameterizes a System.
	Config = core.Config
	// Thread is a thread handle (pthread_t).
	Thread = core.Thread
	// Attr is a thread creation attribute object (pthread_attr_t).
	Attr = core.Attr
	// Mutex is a POSIX mutex (pthread_mutex_t).
	Mutex = core.Mutex
	// MutexAttr configures a mutex (pthread_mutexattr_t).
	MutexAttr = core.MutexAttr
	// Cond is a condition variable (pthread_cond_t).
	Cond = core.Cond
	// Semaphore is a counting semaphore built on Mutex and Cond.
	Semaphore = sem.Semaphore
	// OnceControl is a pthread_once_t control block.
	OnceControl = core.OnceControl
	// Key is a thread-specific data key (pthread_key_t).
	Key = core.Key
	// JmpBuf is a jump buffer (jmp_buf).
	JmpBuf = core.JmpBuf
	// Device is a simulated FIFO-serviced I/O device.
	Device = core.Device
	// ThreadInfo is a debugger-style TCB snapshot.
	ThreadInfo = core.ThreadInfo
	// SigContext is passed to signal handlers; it carries the redirect
	// hook.
	SigContext = core.SigContext
	// SigHandler is a user signal handler run via a fake call.
	SigHandler = core.SigHandler
	// Errno is a POSIX error number.
	Errno = core.Errno
	// Stats aggregates library counters.
	Stats = core.Stats
	// Policy is a scheduling policy.
	Policy = core.Policy
	// Protocol is a mutex priority protocol.
	Protocol = core.Protocol
	// CancelState is a cancellation interruptibility state.
	CancelState = core.CancelState
	// PervertPolicy is a perverted-scheduling debug policy.
	PervertPolicy = core.PervertPolicy
	// MixMode selects the mixed-protocol unlock behaviour (Table 4).
	MixMode = core.MixMode
	// State is a thread scheduling state.
	State = core.State
	// TraceEvent is one timestamped scheduling event.
	TraceEvent = core.TraceEvent
	// Tracer receives trace events.
	Tracer = core.Tracer
	// EventKind classifies trace events.
	EventKind = core.EventKind
	// Explorer receives forced-switch decision points during schedule
	// exploration (record/replay, PCT, bounded search).
	Explorer = core.Explorer
	// MetricsSink receives profiling events (internal/metrics.Collector
	// is the standard implementation; attach via Config.Metrics).
	MetricsSink = core.MetricsSink
	// SwitchPoint classifies where an Explorer decision is taken.
	SwitchPoint = core.SwitchPoint
	// Cont is a continuation thread's resume descriptor: the handle a
	// parked-continuation thread's steps receive (see CreateCont).
	Cont = core.Cont
	// ContFunc is one step of a continuation thread.
	ContFunc = core.ContFunc

	// IO is the blocking-I/O jacket layer bound to a System: sockets
	// and device files with per-thread blocking semantics built on
	// per-fd wait queues.
	IO = ptio.IO
	// Listener is a listening socket with a bounded accept backlog.
	Listener = ptio.Listener
	// Conn is one endpoint of an established connection.
	Conn = ptio.Conn
	// File is a blocking jacket over a simulated device file.
	File = ptio.File
	// NetConfig parameterizes the simulated socket stack.
	NetConfig = net.Config
	// NetStats counts socket-layer traffic.
	NetStats = net.Stats
	// FD is a file descriptor in the simulated process.
	FD = unixkern.FD

	// Signal is a UNIX signal number.
	Signal = unixkern.Signal
	// Sigset is a set of signals.
	Sigset = unixkern.Sigset
	// SigInfo carries a signal and its provenance.
	SigInfo = unixkern.SigInfo

	// Time is an absolute virtual timestamp.
	Time = vtime.Time
	// Duration is a span of virtual time.
	Duration = vtime.Duration

	// CostModel is a machine cost model.
	CostModel = hw.CostModel
	// LockPrimitive selects a mutex's atomic lock path.
	LockPrimitive = hw.LockPrimitive
)

// New creates a thread system. The zero Config selects the SPARCstation
// IPX cost model, SCHED_FIFO, a 10ms RR quantum, and an 8-entry TCB pool.
func New(cfg Config) *System { return core.New(cfg) }

// DefaultAttr returns the default thread attributes.
func DefaultAttr() Attr { return core.DefaultAttr() }

// NewSemaphore creates a counting semaphore on a system.
func NewSemaphore(s *System, name string, initial int) (*Semaphore, error) {
	return sem.New(s, name, initial)
}

// Scheduling policies.
const (
	SchedFIFO = core.SchedFIFO
	SchedRR   = core.SchedRR
)

// Mutex protocols.
const (
	ProtocolNone    = core.ProtocolNone
	ProtocolInherit = core.ProtocolInherit
	ProtocolCeiling = core.ProtocolCeiling
)

// Cancellation interruptibility states (Table 1).
const (
	CancelControlled   = core.CancelControlled
	CancelDisabled     = core.CancelDisabled
	CancelAsynchronous = core.CancelAsynchronous
)

// Perverted scheduling policies.
const (
	PervertNone        = core.PervertNone
	PervertMutexSwitch = core.PervertMutexSwitch
	PervertRROrdered   = core.PervertRROrdered
	PervertRandom      = core.PervertRandom
)

// Mixed-protocol unlock modes (Table 4).
const (
	MixStack        = core.MixStack
	MixLinearSearch = core.MixLinearSearch
)

// Explorer switch points.
const (
	PointKernelExit = core.PointKernelExit
	PointLock       = core.PointLock
)

// Priority range.
const (
	MinPrio     = sched.MinPrio
	MaxPrio     = sched.MaxPrio
	DefaultPrio = sched.DefaultPrio
)

// Error numbers.
const (
	OK           = core.OK
	EPERM        = core.EPERM
	ESRCH        = core.ESRCH
	EINTR        = core.EINTR
	EBADF        = core.EBADF
	EAGAIN       = core.EAGAIN
	ENOMEM       = core.ENOMEM
	EBUSY        = core.EBUSY
	EINVAL       = core.EINVAL
	EDEADLK      = core.EDEADLK
	ENOSYS       = core.ENOSYS
	EADDRINUSE   = core.EADDRINUSE
	ECONNRESET   = core.ECONNRESET
	ETIMEDOUT    = core.ETIMEDOUT
	ECONNREFUSED = core.ECONNREFUSED
)

// Virtual time units.
const (
	Nanosecond  = vtime.Nanosecond
	Microsecond = vtime.Microsecond
	Millisecond = vtime.Millisecond
	Second      = vtime.Second
)

// Commonly used signals, re-exported for convenience; the full set lives
// in the unixkern package's constants.
const (
	SIGHUP    = unixkern.SIGHUP
	SIGINT    = unixkern.SIGINT
	SIGQUIT   = unixkern.SIGQUIT
	SIGILL    = unixkern.SIGILL
	SIGABRT   = unixkern.SIGABRT
	SIGFPE    = unixkern.SIGFPE
	SIGKILL   = unixkern.SIGKILL
	SIGBUS    = unixkern.SIGBUS
	SIGSEGV   = unixkern.SIGSEGV
	SIGPIPE   = unixkern.SIGPIPE
	SIGALRM   = unixkern.SIGALRM
	SIGTERM   = unixkern.SIGTERM
	SIGIO     = unixkern.SIGIO
	SIGVTALRM = unixkern.SIGVTALRM
	SIGUSR1   = unixkern.SIGUSR1
	SIGUSR2   = unixkern.SIGUSR2
)

// Machine presets of the paper's evaluation.
var (
	// SPARCstation1Plus is the 25 MHz machine of Table 2's first
	// columns.
	SPARCstation1Plus = hw.SPARCstation1Plus
	// SPARCstationIPX is the 40 MHz machine of Table 2's later columns.
	SPARCstationIPX = hw.SPARCstationIPX
)

// Lock primitives for the Figure 4 ablation.
const (
	TASOnly        = hw.TASOnly
	TASWithRAS     = hw.TASWithRAS
	CompareAndSwap = hw.CompareAndSwap
)

// Canceled is the exit status of a cancelled thread (PTHREAD_CANCELED).
var Canceled = core.Canceled

// EOF is the clean end-of-stream condition a Conn.Read reports after the
// peer's orderly close (read(2) returning 0).
var EOF = ptio.EOF

// NewIO binds a blocking-I/O jacket layer (sockets and device files)
// over a fresh simulated socket stack to a system. Call it inside
// sys.Run, or before starting threads.
func NewIO(sys *System, cfg NetConfig) *IO { return ptio.New(sys, cfg) }

// MakeSigset builds a signal set from a list of signals.
func MakeSigset(sigs ...Signal) Sigset { return unixkern.MakeSigset(sigs...) }

// FullSigset is the set of every maskable signal.
func FullSigset() Sigset { return unixkern.FullSigset() }
