module pthreads

go 1.22
