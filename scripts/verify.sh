#!/bin/sh
# Tier-1 verification: build + full test suite, vet, and the race
# detector over the packages with the hottest concurrency-adjacent code.
# (The simulation itself is single-goroutine-at-a-time by construction;
# -race still guards the baton-passing and pool machinery.)
set -ex
cd "$(dirname "$0")/.."
go build ./...
go test ./...
go vet ./...
go test -race ./internal/core/ ./internal/sched/
