#!/bin/sh
# Tier-1 verification: build + full test suite, vet, and the race
# detector over the packages with the hottest concurrency-adjacent code.
# (The simulation itself is single-goroutine-at-a-time by construction;
# -race still guards the baton-passing and pool machinery.)
set -ex
cd "$(dirname "$0")/.."
go build ./...
go test ./...
go vet ./...
go test -race ./internal/core/ ./internal/sched/

# Schedule-exploration smoke: bounded search must find the seeded bugs
# (deadlock, lost update), shrink them, and replay the minimized token to
# a byte-identical failing trace; the fixed variants must come back
# clean; record→replay must be deterministic.
go run ./cmd/ptexplore -workload philosophers-broken -policy bounded -bound 2 -lock-only -expect found
go run ./cmd/ptexplore -workload philosophers-fixed -policy bounded -bound 2 -lock-only -expect clean
go run ./cmd/ptexplore -workload racy-counter -policy bounded -bound 1 -expect found
go run ./cmd/ptexplore -workload racy-counter-fixed -policy bounded -bound 1 -expect clean
go run ./cmd/ptexplore -workload racy-counter -check-replay

# Blocking-I/O jacket smoke: the webserver example must complete (it
# exits nonzero if its two runs produce different trace tokens); the
# socket workloads must explore clean — except the seeded lost-wakeup
# bug, which the bounded search must find (and whose flag race the
# checker must flag).
go run ./examples/webserver > /dev/null
go run ./cmd/ptexplore -workload sock-echo -policy bounded -bound 1 -expect clean
go run ./cmd/ptexplore -workload sock-lost-wakeup -policy bounded -bound 1 -races -expect found
go run ./cmd/ptexplore -workload sock-lost-wakeup-fixed -policy bounded -bound 1 -expect clean

# Profiler smoke: ptprof must self-check (deterministic chrome + profile
# JSON exports, 100% virtual-time attribution) on the webserver workload;
# the inversion watchdog must fire on the no-protocol Figure 5 scenario
# and stay quiet under priority inheritance and ceiling.
go run ./cmd/ptprof -workload webserver -check -q
go run ./cmd/ptprof -workload inversion -expect inversion -q
go run ./cmd/ptprof -workload inversion-inherit -expect clean -q
go run ./cmd/ptprof -workload inversion-ceiling -expect clean -q
go run ./cmd/ptprof -workload deadlock -expect deadlock -q

# Metrics-off observer check: the base report must be deterministic,
# and `ptreport -profile` must reproduce it byte-for-byte as a prefix —
# attaching the collector to the profile workloads changes nothing in
# the metrics-off sections, because the hooks are nil checks and
# nothing else.
a="$(go run ./cmd/ptreport)"
b="$(go run ./cmd/ptreport)"
[ "$a" = "$b" ]
p="$(go run ./cmd/ptreport -profile)"
case "$p" in "$a"*) ;; *) echo "ptreport -profile diverges from the base report" >&2; exit 1 ;; esac

# Parallel-sweep determinism: the sharded ptexplore sweep must be
# byte-identical to the sequential one, for both search policies (the
# deterministic-merge property the parallel engine guarantees), and the
# explore package's worker pool must be race-clean.
go test -race ./internal/explore/
t="$(mktemp -d)"
go run ./cmd/ptexplore -workload philosophers-broken -policy bounded -bound 2 -lock-only -parallel 1 > "$t/seq.txt"
go run ./cmd/ptexplore -workload philosophers-broken -policy bounded -bound 2 -lock-only -parallel 8 > "$t/par.txt"
cmp "$t/seq.txt" "$t/par.txt"
go run ./cmd/ptexplore -workload racy-counter -policy pct -seeds 50 -parallel 1 > "$t/seq.txt"
go run ./cmd/ptexplore -workload racy-counter -policy pct -seeds 50 -parallel 8 > "$t/par.txt"
cmp "$t/seq.txt" "$t/par.txt"

# C10k smoke at reduced N: the scaling scenarios must run clean, and the
# dispatch and uncontended-mutex per-op costs must stay flat (within 40%)
# as the thread population grows 8 -> 1000. The bound is a host-noise
# tripwire, not the regression detector: mutex is an ~18 ns measurement,
# where a single GC pause inside a rung trips a tight bound on a shared
# 1-CPU host even at min-of-5 — the exact gates are the vus/op and
# percentile invariance checks on the C100k ladder below.
go run ./cmd/ptbench -c10k -c10kmax 1000 -c10kreps 5 -hostout "$t/bench.json" > "$t/c10k.txt"
cat "$t/c10k.txt"
awk '
  ($1 == "dispatch" || $1 == "mutex") && $2 ~ /^[0-9]+$/ {
    if (!($1 in lo) || $4 < lo[$1]) lo[$1] = $4
    if (!($1 in hi) || $4 > hi[$1]) hi[$1] = $4
  }
  END {
    for (s in lo) if (hi[s] > 1.4 * lo[s]) { bad = 1
      printf "c10k: %s per-op cost not flat: %.0f..%.0f ns/op\n", s, lo[s], hi[s] }
    exit bad
  }' "$t/c10k.txt"

# C100k smoke at reduced reps: the full ladder to 100,000 threads must
# run clean, and every scenario's virtual cost — including the
# open-loop latency percentiles — must be identical down the whole
# ladder: population changes host time, never simulated time.
go run ./cmd/ptbench -c10k -c10kmax 100000 -c10kreps 1 -hostout "$t/bench.json" > "$t/c100k.txt"
cat "$t/c100k.txt"
awk '
  $1 ~ /^(dispatch|mutex|timer|echo)$/ && $2 ~ /^[0-9]+$/ {
    if (!($1 in vus)) vus[$1] = $6
    else if (vus[$1] != $6) { bad = 1
      printf "c100k: %s vus/op varies with population: %s vs %s\n", $1, vus[$1], $6 }
  }
  $1 == "openloop" && $2 ~ /^[0-9]+$/ {
    if (!p50) { p50 = $5; p99 = $6 }
    else if (p50 != $5 || p99 != $6) { bad = 1
      printf "c100k: openloop percentiles vary with population: %s/%s vs %s/%s\n", p50, p99, $5, $6 }
    seen100k = ($2 == "100000") ? 1 : seen100k
  }
  END {
    if (!seen100k) { bad = 1; print "c100k: 100000-thread rung missing" }
    exit bad
  }' "$t/c100k.txt"

# Steady-state allocation gate on the echo ladder's endpoints: the
# round trip beside 10,000 and beside 100,000 parked readers must both
# report 0 allocs/op — the wait-queue shards, descriptor table, timer
# wheel, and batched completions are all preallocated or pooled.
go test -run '^$' -bench 'C10KEcho$|C100KEcho$' -benchmem -benchtime 200x . > "$t/echobench.txt"
cat "$t/echobench.txt"
awk '
  /^BenchmarkC1/ { found++
    if ($(NF-1) + 0 != 0) { bad = 1
      printf "alloc gate: %s reports %s allocs/op (want 0)\n", $1, $(NF-1) } }
  END { if (found < 2) { bad = 1; print "alloc gate: expected both echo benchmarks" }
    exit bad }' "$t/echobench.txt"

# Resident-footprint smoke (DESIGN.md §15, E32) at a reduced
# population: RunC1M itself fails unless every thread parks as a
# continuation (no goroutine) with the runner pool and goroutine delta
# inside the O(pool) budget, so a clean exit is the representation
# holding at 200k residents. On top of that, a bytes/resident tripwire:
# a parked thread is a TCB + continuation frame + simulated stack +
# wait-queue slot, which must stay under 4 KiB of host heap.
go run ./cmd/ptbench -c1m -c1mthreads 200000 -c1mout "" > "$t/c1m.txt"
cat "$t/c1m.txt"
awk '
  $1 == "bytes/resident" { found = 1
    if ($2 + 0 <= 0 || $2 + 0 > 4096) { bad = 1
      printf "c1m: bytes/resident %s outside (0, 4096]\n", $2 } }
  END { if (!found) { bad = 1; print "c1m: bytes/resident line missing" }
    exit bad }' "$t/c1m.txt"

# Batched-SIGIO determinism: two full webserver runs (the workload with
# the densest same-tick readiness traffic) must be byte-identical on
# stdout, on top of the trace-token self-check each run already does.
go run ./examples/webserver > "$t/ws1.txt"
go run ./examples/webserver > "$t/ws2.txt"
cmp "$t/ws1.txt" "$t/ws2.txt"

# Simulated-SMP gates (DESIGN.md §12, E29). First the N=1 byte-identity
# claim: the SMP machinery must leave every uniprocessor artifact — the
# Table 2 regeneration, the full ptreport, the webserver trace tokens —
# byte-identical to the checked-in pre-SMP golden outputs.
go run ./cmd/ptbench > "$t/table2.txt"
cmp scripts/golden/table2.txt "$t/table2.txt"
go run ./cmd/ptreport > "$t/ptreport.txt"
cmp scripts/golden/ptreport.txt "$t/ptreport.txt"
cmp scripts/golden/webserver.txt "$t/ws1.txt"

# Multiprocessor determinism: two full contention-ladder runs (every
# engine, 1..8 VCPUs, schedule hashes included) must be byte-identical.
go run ./cmd/ptbench -smp -smpout "" > "$t/smp1.txt"
go run ./cmd/ptbench -smp -smpout "" > "$t/smp2.txt"
cmp "$t/smp1.txt" "$t/smp2.txt"

# The lock-engine protocols must hold up under the host race detector
# (real goroutine interleavings over the same protocol code the
# simulator runs), and the engine exploration workloads must behave:
# bounded DFS finds the seeded unfair-handoff mutual-exclusion bug,
# while MCS handoff, the 16-bit ticket wraparound, and the repaired
# unfair engine explore clean.
go test -race ./internal/lockeng/
go run ./cmd/ptexplore -workload lock-unfair -policy bounded -bound 1 -races -expect found
go run ./cmd/ptexplore -workload lock-unfair-fixed -policy bounded -bound 2 -expect clean
go run ./cmd/ptexplore -workload lock-mcs-handoff -policy bounded -bound 2 -expect clean
go run ./cmd/ptexplore -workload lock-ticket-wrap -policy bounded -bound 2 -expect clean

# Virtual-datacenter gates (DESIGN.md §13, E30). The fabric's baton
# machinery under the host race detector, then fleet determinism: the
# 9-host fault-injection example must produce byte-identical stdout
# across two full runs (each run already self-checks its fingerprint
# and all nine trace streams internally and exits 1 on mismatch), and
# two dc-ladder sweeps must render identical bytes, fingerprints and
# all — determinism under randomized loss.
go test -race ./internal/metrics/ ./internal/fabric/
go run ./examples/fleet > "$t/fleet1.txt"
go run ./examples/fleet > "$t/fleet2.txt"
cmp "$t/fleet1.txt" "$t/fleet2.txt"
go run ./cmd/ptbench -dc -dcreplicas 1,2 -dcloss 0,0.05 -dcclients 80 -dcout "" > "$t/dc1.txt"
go run ./cmd/ptbench -dc -dcreplicas 1,2 -dcloss 0,0.05 -dcclients 80 -dcout "" > "$t/dc2.txt"
cmp "$t/dc1.txt" "$t/dc2.txt"

# Cross-host exploration: the bounded search must find the seeded
# fleet lost wakeup (and replay its host-qualified token to an
# identical failing trace, with the flag race flagged across the
# network's happens-before edges); the repaired scenario explores
# clean; fleet record->replay must be deterministic. The per-host
# Perfetto export self-checks byte-identity and per-host pids.
go run ./cmd/ptexplore -fleet fleet-lost-wakeup -lock-only -races -expect found
go run ./cmd/ptexplore -fleet fleet-lost-wakeup-fixed -lock-only -max-runs 60 -expect clean
go run ./cmd/ptexplore -fleet fleet-echo -check-replay
go run ./cmd/ptprof -fleet fleet-echo -check -q

# Fleet observability gates (DESIGN.md §14, E31). Span ids are pure
# functions of virtual state, so two spans-on exports of the same
# scenario must be byte-identical files; -check additionally proves
# the spans-off run schedules identically (observation never perturbs)
# and validates the span forest. The spans-off export layout is pinned
# by the golden gates above (spans are off by default everywhere) and
# by the exporter's nil-overlay byte-identity unit test.
go run ./cmd/ptprof -fleet fleet-echo -spans -check -q -chrome "$t/fleetspans1.json"
go run ./cmd/ptprof -fleet fleet-echo -spans -q -chrome "$t/fleetspans2.json"
cmp "$t/fleetspans1.json" "$t/fleetspans2.json"

# Spans-off allocation gate: the echo round trip must stay 0 allocs/op
# with the recorder absent, and spans-on must not change vus/op — the
# plane bills host bytes, never virtual time.
go test -run '^$' -bench 'NetEcho$|NetEchoSpans$' -benchmem -benchtime 200x . > "$t/spanbench.txt"
cat "$t/spanbench.txt"
awk '
  /^BenchmarkNetEcho/ { found++
    vus[found] = $(NF-5)
    if ($1 == "BenchmarkNetEcho" && $(NF-1) + 0 != 0) { bad = 1
      printf "span gate: %s reports %s allocs/op (want 0)\n", $1, $(NF-1) } }
  END { if (found < 2) { bad = 1; print "span gate: expected both echo benchmarks" }
    else if (vus[1] != vus[2]) { bad = 1
      printf "span gate: vus/op differs spans on vs off: %s vs %s\n", vus[1], vus[2] }
    exit bad }' "$t/spanbench.txt"

# Perf-regression gate: benchdiff must fail the planted 5-regression
# fixture (vus/op, allocs/op, ns/op, and the c1m runner-pool and
# bytes-per-resident plants), pass the within-tolerance fixture, and
# pass the checked-in BENCH_host.json history.
if scripts/benchdiff cmd/ptbench/testdata/regression.json; then
  echo "benchdiff: failed to flag the planted regressions" >&2; exit 1
fi
scripts/benchdiff cmd/ptbench/testdata/clean.json
scripts/benchdiff
rm -rf "$t"
