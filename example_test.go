package pthreads_test

import (
	"fmt"

	"pthreads"
)

// The basic lifecycle: create a system, run a main thread, spawn a
// worker, join it.
func Example() {
	sys := pthreads.New(pthreads.Config{})
	sys.Run(func() {
		attr := pthreads.DefaultAttr()
		attr.Name = "worker"
		th, _ := sys.Create(attr, func(arg any) any {
			sys.Compute(2 * pthreads.Millisecond)
			return arg.(int) * 2
		}, 21)
		v, _ := sys.Join(th)
		fmt.Println("worker returned", v)
	})
	// Output:
	// worker returned 42
}

// Mutual exclusion with priority inheritance: the low-priority holder is
// boosted while a high-priority thread waits.
func ExampleMutex() {
	sys := pthreads.New(pthreads.Config{})
	sys.Run(func() {
		m := sys.MustMutex(pthreads.MutexAttr{
			Name:     "resource",
			Protocol: pthreads.ProtocolInherit,
		})

		low := pthreads.DefaultAttr()
		low.Name = "low"
		low.Priority = 5
		holder, _ := sys.Create(low, func(any) any {
			m.Lock()
			sys.Compute(3 * pthreads.Millisecond)
			boosted := sys.Self().Priority()
			m.Unlock()
			return boosted
		}, nil)

		high := pthreads.DefaultAttr()
		high.Name = "high"
		high.Priority = 20
		contender, _ := sys.Create(high, func(any) any {
			sys.Sleep(pthreads.Millisecond)
			m.Lock()
			m.Unlock()
			return nil
		}, nil)

		boost, _ := sys.Join(holder)
		sys.Join(contender)
		fmt.Println("holder was boosted to priority", boost)
	})
	// Output:
	// holder was boosted to priority 20
}

// The condition-variable idiom the paper mandates: re-evaluate the
// predicate in a loop, since wakeups may be spurious.
func ExampleCond() {
	sys := pthreads.New(pthreads.Config{})
	sys.Run(func() {
		m := sys.MustMutex(pthreads.MutexAttr{Name: "m"})
		c := sys.NewCond("ready")
		ready := false

		attr := pthreads.DefaultAttr()
		attr.Name = "waiter"
		attr.Priority = pthreads.DefaultPrio + 1
		waiter, _ := sys.Create(attr, func(any) any {
			m.Lock()
			for !ready {
				c.Wait(m)
			}
			m.Unlock()
			return "saw it"
		}, nil)

		m.Lock()
		ready = true
		c.Signal()
		m.Unlock()
		v, _ := sys.Join(waiter)
		fmt.Println(v)
	})
	// Output:
	// saw it
}

// A dedicated signal-handling thread using sigwait, with the signal
// masked everywhere else.
func ExampleSystem_Sigwait() {
	sys := pthreads.New(pthreads.Config{})
	sys.Run(func() {
		sys.SetSigmask(pthreads.MakeSigset(pthreads.SIGUSR1))

		attr := pthreads.DefaultAttr()
		attr.Name = "sigserver"
		attr.Priority = pthreads.DefaultPrio + 1
		server, _ := sys.Create(attr, func(any) any {
			sig, _ := sys.Sigwait(pthreads.MakeSigset(pthreads.SIGUSR1))
			return sig
		}, nil)

		sys.RaiseProcess(pthreads.SIGUSR1)
		got, _ := sys.Join(server)
		fmt.Println("server consumed", got)
	})
	// Output:
	// server consumed SIGUSR1
}

// Cancellation honours interruptibility: disabled pends, an interruption
// point acts.
func ExampleSystem_Cancel() {
	sys := pthreads.New(pthreads.Config{})
	sys.Run(func() {
		attr := pthreads.DefaultAttr()
		attr.Name = "victim"
		attr.Priority = pthreads.DefaultPrio + 1
		victim, _ := sys.Create(attr, func(any) any {
			sys.CleanupPush(func(any) { fmt.Println("cleanup ran") }, nil)
			sys.Sleep(pthreads.Second) // an interruption point
			return "finished"
		}, nil)
		sys.Cancel(victim)
		status, _ := sys.Join(victim)
		fmt.Println("status:", status)
	})
	// Output:
	// cleanup ran
	// status: PTHREAD_CANCELED
}

// setjmp/longjmp, including the redirect from a signal handler that the
// Ada runtime uses for exception propagation.
func ExampleSystem_Setjmp() {
	sys := pthreads.New(pthreads.Config{})
	sys.Run(func() {
		var jb pthreads.JmpBuf
		sys.Sigaction(pthreads.SIGFPE, func(sig pthreads.Signal, info *pthreads.SigInfo, sc *pthreads.SigContext) {
			sc.RedirectTo(&jb, 1)
		}, 0)
		v := sys.Setjmp(&jb, func() {
			sys.RaiseSync(pthreads.SIGFPE, 0)
			fmt.Println("unreachable")
		})
		if v == 1 {
			fmt.Println("recovered from SIGFPE")
		}
	})
	// Output:
	// recovered from SIGFPE
}

// Perverted scheduling makes latent races reproducible: the mutex-switch
// policy forces a context switch at every successful lock.
func ExampleConfig_pervertedScheduling() {
	run := func(policy pthreads.PervertPolicy) int {
		sys := pthreads.New(pthreads.Config{Pervert: policy, Seed: 1})
		counter := 0
		sys.Run(func() {
			m := sys.MustMutex(pthreads.MutexAttr{Name: "log", Protocol: pthreads.ProtocolInherit})
			var ths []*pthreads.Thread
			for i := 0; i < 2; i++ {
				attr := pthreads.DefaultAttr()
				th, _ := sys.Create(attr, func(any) any {
					for j := 0; j < 10; j++ {
						tmp := counter // the racy read
						m.Lock()
						m.Unlock()
						counter = tmp + 1 // the racy write
					}
					return nil
				}, nil)
				ths = append(ths, th)
			}
			for _, th := range ths {
				sys.Join(th)
			}
		})
		return counter
	}
	fmt.Println("FIFO sees:", run(pthreads.PervertNone), "of 20")
	fmt.Println("mutex-switch sees:", run(pthreads.PervertMutexSwitch), "of 20")
	// Output:
	// FIFO sees: 20 of 20
	// mutex-switch sees: 10 of 20
}

// Virtual time makes every run exactly reproducible.
func ExampleSystem_Now() {
	sys := pthreads.New(pthreads.Config{})
	sys.Run(func() {
		t0 := sys.Now()
		sys.Compute(1500 * pthreads.Microsecond)
		fmt.Println("computed for:", sys.Now().Sub(t0))
	})
	// Output:
	// computed for: 1500.00µs
}
