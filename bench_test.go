// Benchmarks regenerating the paper's Table 2, one testing.B benchmark
// per row, plus the ablation and layering benchmarks. Each reports two
// numbers: the Go wall-clock ns/op of the reproduction itself, and —
// the number that corresponds to the paper — the virtual µs/op charged
// by the calibrated SPARCstation IPX machine model ("vus/op").
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The deterministic paper-vs-measured comparison lives in cmd/ptbench;
// these benchmarks exercise the same code paths under the standard Go
// harness.
package pthreads_test

import (
	"testing"

	"pthreads"
	"pthreads/internal/eval"
	"pthreads/internal/metrics"
	"pthreads/internal/obs"
)

// reportVirtual attaches the virtual-time metric for n operations.
func reportVirtual(b *testing.B, s *pthreads.System, from pthreads.Time, n int) {
	b.Helper()
	if n <= 0 {
		n = 1
	}
	b.ReportMetric(s.Now().Sub(from).Micros()/float64(n), "vus/op")
}

// BenchmarkKernelEnterExit is Table 2 row 1: the null library call.
func BenchmarkKernelEnterExit(b *testing.B) {
	s := pthreads.New(pthreads.Config{})
	err := s.Run(func() {
		b.ResetTimer()
		v0 := s.Now()
		for i := 0; i < b.N; i++ {
			s.KernelEnterExit()
		}
		b.StopTimer()
		reportVirtual(b, s, v0, b.N)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkUnixGetpid is Table 2 row 2: enter and exit the UNIX kernel.
func BenchmarkUnixGetpid(b *testing.B) {
	s := pthreads.New(pthreads.Config{})
	err := s.Run(func() {
		p := s.Process()
		b.ResetTimer()
		v0 := s.Now()
		for i := 0; i < b.N; i++ {
			p.Getpid()
		}
		b.StopTimer()
		reportVirtual(b, s, v0, b.N)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMutexNoContention is Table 2 row 3.
func BenchmarkMutexNoContention(b *testing.B) {
	s := pthreads.New(pthreads.Config{})
	err := s.Run(func() {
		m := s.MustMutex(pthreads.MutexAttr{Name: "bench"})
		b.ResetTimer()
		v0 := s.Now()
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
		b.StopTimer()
		reportVirtual(b, s, v0, b.N)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMutexContention is Table 2 row 4: the unlock-to-lock-return
// hand-off to a suspended higher-priority thread.
func BenchmarkMutexContention(b *testing.B) {
	s := pthreads.New(pthreads.Config{})
	err := s.Run(func() {
		m := s.MustMutex(pthreads.MutexAttr{Name: "bench"})
		gate, _ := pthreads.NewSemaphore(s, "gate", 0)
		var t0 pthreads.Time
		var total pthreads.Duration
		m.Lock()
		attr := pthreads.DefaultAttr()
		attr.Priority = s.Self().Priority() + 1
		locker, _ := s.Create(attr, func(any) any {
			for i := 0; i < b.N; i++ {
				m.Lock() // suspended while main holds m
				total += s.Now().Sub(t0)
				m.Unlock()
				gate.P()
			}
			return nil
		}, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 = s.Now()
			m.Unlock()
			m.Lock()
			gate.V()
		}
		b.StopTimer()
		// The paper's interval: unlock by A to lock return in B.
		b.ReportMetric(total.Micros()/float64(b.N), "vus/op")
		m.Unlock()
		s.Join(locker)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSemaphoreSync is Table 2 row 5: one P plus one V between two
// threads (half a ping-pong round).
func BenchmarkSemaphoreSync(b *testing.B) {
	s := pthreads.New(pthreads.Config{})
	err := s.Run(func() {
		ping, _ := pthreads.NewSemaphore(s, "ping", 0)
		pong, _ := pthreads.NewSemaphore(s, "pong", 0)
		attr := pthreads.DefaultAttr()
		echo, _ := s.Create(attr, func(any) any {
			for i := 0; i < b.N; i++ {
				ping.P()
				pong.V()
			}
			return nil
		}, nil)
		b.ResetTimer()
		v0 := s.Now()
		for i := 0; i < b.N; i++ {
			ping.V()
			pong.P()
		}
		b.StopTimer()
		reportVirtual(b, s, v0, 2*b.N)
		s.Join(echo)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkThreadCreate is Table 2 row 6: pthread_create with a pooled
// TCB/stack and no context switch.
func BenchmarkThreadCreate(b *testing.B) {
	const batch = 64
	s := pthreads.New(pthreads.Config{PoolSize: batch + 8})
	err := s.Run(func() {
		attr := pthreads.DefaultAttr()
		attr.Priority = s.Self().Priority() - 1
		ths := make([]*pthreads.Thread, 0, batch)
		var virtual pthreads.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v0 := s.Now()
			th, err := s.Create(attr, func(any) any { return nil }, nil)
			if err != nil {
				b.Fatal(err)
			}
			virtual += s.Now().Sub(v0)
			ths = append(ths, th)
			if len(ths) == batch {
				// Drain outside the timed window so the pool refills.
				b.StopTimer()
				for _, t := range ths {
					s.Join(t)
				}
				ths = ths[:0]
				b.StartTimer()
			}
		}
		b.StopTimer()
		b.ReportMetric(virtual.Micros()/float64(b.N), "vus/op")
		for _, t := range ths {
			s.Join(t)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCreateUnpooled is the ablation counterpart of row 6: every
// creation pays the heap allocation (paper: ~70% of creation time).
func BenchmarkCreateUnpooled(b *testing.B) {
	const batch = 64
	s := pthreads.New(pthreads.Config{DisablePool: true})
	err := s.Run(func() {
		attr := pthreads.DefaultAttr()
		attr.Priority = s.Self().Priority() - 1
		ths := make([]*pthreads.Thread, 0, batch)
		var virtual pthreads.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v0 := s.Now()
			th, _ := s.Create(attr, func(any) any { return nil }, nil)
			virtual += s.Now().Sub(v0)
			ths = append(ths, th)
			if len(ths) == batch {
				b.StopTimer()
				for _, t := range ths {
					s.Join(t)
				}
				ths = ths[:0]
				b.StartTimer()
			}
		}
		b.StopTimer()
		b.ReportMetric(virtual.Micros()/float64(b.N), "vus/op")
		for _, t := range ths {
			s.Join(t)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSetjmpLongjmp is Table 2 row 7.
func BenchmarkSetjmpLongjmp(b *testing.B) {
	s := pthreads.New(pthreads.Config{})
	err := s.Run(func() {
		b.ResetTimer()
		v0 := s.Now()
		for i := 0; i < b.N; i++ {
			var jb pthreads.JmpBuf
			if s.Setjmp(&jb, func() { s.Longjmp(&jb, 1) }) != 1 {
				b.Fatal("longjmp missed")
			}
		}
		b.StopTimer()
		reportVirtual(b, s, v0, b.N)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkContextSwitch is Table 2 row 8: a yield between two
// equal-priority threads (each iteration is two switches).
func BenchmarkContextSwitch(b *testing.B) {
	s := pthreads.New(pthreads.Config{})
	err := s.Run(func() {
		stop := false
		attr := pthreads.DefaultAttr()
		partner, _ := s.Create(attr, func(any) any {
			for !stop {
				s.Yield()
			}
			return nil
		}, nil)
		s.Yield()
		b.ResetTimer()
		v0 := s.Now()
		for i := 0; i < b.N; i++ {
			s.Yield()
		}
		b.StopTimer()
		reportVirtual(b, s, v0, 2*b.N)
		stop = true
		s.Join(partner)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSignalInternal is Table 2 row 10: pthread_kill to a suspended
// thread, measured to handler entry.
func BenchmarkSignalInternal(b *testing.B) {
	s := pthreads.New(pthreads.Config{})
	err := s.Run(func() {
		var t0 pthreads.Time
		var total pthreads.Duration
		s.Sigaction(pthreads.SIGUSR1, func(pthreads.Signal, *pthreads.SigInfo, *pthreads.SigContext) {
			total += s.Now().Sub(t0)
		}, 0)
		attr := pthreads.DefaultAttr()
		attr.Priority = s.Self().Priority() + 1
		receiver, _ := s.Create(attr, func(any) any {
			for i := 0; i < b.N; i++ {
				s.Sleep(pthreads.Second)
			}
			return nil
		}, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 = s.Now()
			s.Kill(receiver, pthreads.SIGUSR1)
		}
		b.StopTimer()
		// Send to handler entry, the paper's definition.
		b.ReportMetric(total.Micros()/float64(b.N), "vus/op")
		s.Join(receiver)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSignalExternal is Table 2 row 11: kill(getpid(), sig)
// demultiplexed to a thread by the universal handler.
func BenchmarkSignalExternal(b *testing.B) {
	s := pthreads.New(pthreads.Config{})
	err := s.Run(func() {
		var t0 pthreads.Time
		var total pthreads.Duration
		s.Sigaction(pthreads.SIGUSR2, func(pthreads.Signal, *pthreads.SigInfo, *pthreads.SigContext) {
			total += s.Now().Sub(t0)
		}, 0)
		s.SetSigmask(pthreads.MakeSigset(pthreads.SIGUSR2))
		attr := pthreads.DefaultAttr()
		attr.Priority = s.Self().Priority() + 1
		receiver, _ := s.Create(attr, func(any) any {
			for i := 0; i < b.N; i++ {
				s.Sleep(pthreads.Second)
			}
			return nil
		}, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 = s.Now()
			s.RaiseProcess(pthreads.SIGUSR2)
		}
		b.StopTimer()
		b.ReportMetric(total.Micros()/float64(b.N), "vus/op")
		s.Join(receiver)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkUnixSignalAndProcessSwitch covers Table 2 rows 9 and 12
// through the eval harness (they involve no thread library, only the
// simulated UNIX kernel).
func BenchmarkUnixSignalAndProcessSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table2()
		if err != nil {
			b.Fatal(err)
		}
		_ = rows
	}
}

// BenchmarkMutexProtocols compares the lock/unlock pair across the three
// priority protocols (none pays no kernel entry; inheritance and ceiling
// do protocol work).
func BenchmarkMutexProtocols(b *testing.B) {
	cases := []struct {
		name string
		attr pthreads.MutexAttr
	}{
		{"none", pthreads.MutexAttr{Name: "m"}},
		{"inherit", pthreads.MutexAttr{Name: "m", Protocol: pthreads.ProtocolInherit}},
		{"ceiling", pthreads.MutexAttr{Name: "m", Protocol: pthreads.ProtocolCeiling, Ceiling: 30}},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			s := pthreads.New(pthreads.Config{})
			err := s.Run(func() {
				m := s.MustMutex(tc.attr)
				b.ResetTimer()
				v0 := s.Now()
				for i := 0; i < b.N; i++ {
					m.Lock()
					m.Unlock()
				}
				b.StopTimer()
				reportVirtual(b, s, v0, b.N)
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkLockPrimitives is the Figure 4 ablation: ldstub vs
// ldstub-in-RAS vs hypothetical compare-and-swap.
func BenchmarkLockPrimitives(b *testing.B) {
	for _, prim := range []pthreads.LockPrimitive{pthreads.TASOnly, pthreads.TASWithRAS, pthreads.CompareAndSwap} {
		prim := prim
		b.Run(prim.String(), func(b *testing.B) {
			s := pthreads.New(pthreads.Config{})
			err := s.Run(func() {
				m := s.MustMutex(pthreads.MutexAttr{Name: "m", Primitive: prim, PrimitiveSet: true})
				b.ResetTimer()
				v0 := s.Now()
				for i := 0; i < b.N; i++ {
					m.Lock()
					m.Unlock()
				}
				b.StopTimer()
				reportVirtual(b, s, v0, b.N)
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkCondSignalWait measures a full condition-variable hand-off.
func BenchmarkCondSignalWait(b *testing.B) {
	s := pthreads.New(pthreads.Config{})
	err := s.Run(func() {
		m := s.MustMutex(pthreads.MutexAttr{Name: "m"})
		c := s.NewCond("c")
		seq := 0
		attr := pthreads.DefaultAttr()
		partner, _ := s.Create(attr, func(any) any {
			m.Lock()
			for i := 0; i < b.N; i++ {
				for seq%2 == 0 {
					c.Wait(m)
				}
				seq++
				c.Signal()
			}
			m.Unlock()
			return nil
		}, nil)
		b.ResetTimer()
		v0 := s.Now()
		m.Lock()
		for i := 0; i < b.N; i++ {
			seq++
			c.Signal()
			for seq%2 == 1 {
				c.Wait(m)
			}
		}
		m.Unlock()
		b.StopTimer()
		reportVirtual(b, s, v0, 2*b.N)
		s.Join(partner)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRendezvous measures the Ada-layer entry call + accept (the
// layering-overhead claim).
func BenchmarkRendezvous(b *testing.B) {
	res, err := eval.MeasureRendezvousAblation(pthreads.SPARCstationIPX())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.RendezvousMicro, "vus/rendezvous")
	b.ReportMetric(res.Overhead, "x-overhead")
}

// BenchmarkPervertedScheduling measures the cost of each debug policy on
// the synchronization-heavy racy workload.
func BenchmarkPervertedScheduling(b *testing.B) {
	for _, pol := range []pthreads.PervertPolicy{
		pthreads.PervertNone, pthreads.PervertMutexSwitch, pthreads.PervertRROrdered, pthreads.PervertRandom,
	} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.RunPervert(pol, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2Full regenerates the whole table per iteration; it is
// the one-stop reproduction driver under the bench harness.
func BenchmarkTable2Full(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 regenerates the three inversion scenarios.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure5All(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the cancellation-action matrix.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates the protocol-mixing trace in both unlock
// modes.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunTable4(pthreads.MixStack); err != nil {
			b.Fatal(err)
		}
		if _, err := eval.RunTable4(pthreads.MixLinearSearch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUtilizationSweep regenerates the extension figure (three
// utilization points).
func BenchmarkUtilizationSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.UtilizationSweep([]float64{0.3, 0.6, 0.8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyscallProfiles regenerates the syscalls-per-operation bill.
func BenchmarkSyscallProfiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.SyscallProfiles(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetEcho measures one echo round trip through the blocking-I/O
// jacket layer: the client's Write crosses the simulated wire, wakes the
// server from its per-fd wait queue, and the echoed response wakes the
// client back — four jacket calls, two suspensions, two SIGIO
// completions per op. Spans off, this path must stay at 0 allocs/op —
// the regression gate (scripts/benchdiff) holds the line.
func BenchmarkNetEcho(b *testing.B) {
	benchNetEcho(b, false)
}

// BenchmarkNetEchoSpans is the same round trip with the fleet span
// recorder attached: every Read/Write opens, annotates, and closes a
// span. The delta against BenchmarkNetEcho is the recorded cost of the
// observability plane on its hottest path.
func BenchmarkNetEchoSpans(b *testing.B) {
	benchNetEcho(b, true)
}

func benchNetEcho(b *testing.B, spans bool) {
	s := pthreads.New(pthreads.Config{})
	err := s.Run(func() {
		x := pthreads.NewIO(s, pthreads.NetConfig{})
		if spans {
			x.SetSpans(obs.NewRecorder(0))
		}
		l, err := x.Listen("echo", 1)
		if err != nil {
			b.Fatal(err)
		}
		attr := pthreads.DefaultAttr()
		attr.Name = "server"
		server, _ := s.Create(attr, func(any) any {
			c, err := l.Accept()
			if err != nil {
				return nil
			}
			for {
				n, err := c.Read(64)
				if err != nil {
					break // EOF: the client finished
				}
				c.Write(n)
			}
			c.Close()
			return nil
		}, nil)

		c, err := x.Dial("echo")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		v0 := s.Now()
		for i := 0; i < b.N; i++ {
			if _, err := c.Write(64); err != nil {
				b.Fatal(err)
			}
			got := 0
			for got < 64 {
				n, err := c.Read(64)
				if err != nil {
					b.Fatal(err)
				}
				got += n
			}
		}
		b.StopTimer()
		reportVirtual(b, s, v0, b.N)
		c.Close()
		s.Join(server)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkC10KEcho is BenchmarkNetEcho under population pressure:
// 10,000 other threads sit parked in Read on their own connections
// while the active pair echoes. The sharded per-descriptor wait
// tables, pooled completions, and ring-buffer ready queues must keep
// the round trip at the same cost it has with an empty house
// (BENCH_host.json's c10k section records the full ladder).
func BenchmarkC10KEcho(b *testing.B) {
	benchEchoParked(b, 10000, false)
}

// BenchmarkC10KEchoSpans is the C10k round trip with the span recorder
// attached — the plane's cost must not grow with the parked population
// (spans are per active call, not per thread).
func BenchmarkC10KEchoSpans(b *testing.B) {
	benchEchoParked(b, 10000, true)
}

// BenchmarkC100KEcho is the same round trip beside 100,000 parked
// readers. Steady state must stay at 0 allocs/op: the wait-queue
// shards, descriptor table, and timer wheel are all preallocated or
// pooled, so population adds memory but no per-op work.
func BenchmarkC100KEcho(b *testing.B) {
	benchEchoParked(b, 100000, false)
}

// BenchmarkC1MEcho is the top rung: the echo pair works beside one
// million parked readers. Feasible only because each parked reader is
// a continuation thread — a TCB, an arena-backed read state, and a
// wait-queue slot, with no goroutine behind it — so the resident
// population costs memory, not scheduler state. Steady state must stay
// at 0 allocs/op like the smaller rungs.
func BenchmarkC1MEcho(b *testing.B) {
	if testing.Short() {
		b.Skip("million-thread setup: skipped with -short")
	}
	benchEchoParked(b, 1000000, false)
}

func benchEchoParked(b *testing.B, parked int, spans bool) {
	s := pthreads.New(pthreads.Config{PoolSize: parked + 4})
	err := s.Run(func() {
		x := pthreads.NewIO(s, pthreads.NetConfig{})
		if spans {
			x.SetSpans(obs.NewRecorder(0))
		}
		l, err := x.Listen("echo", 1)
		if err != nil {
			b.Fatal(err)
		}
		attr := pthreads.DefaultAttr()
		attr.Name = "server"
		server, _ := s.Create(attr, func(any) any {
			c, err := l.Accept()
			if err != nil {
				return nil
			}
			for {
				n, err := c.Read(64)
				if err != nil {
					break // EOF: the client finished
				}
				c.Write(n)
			}
			c.Close()
			return nil
		}, nil)

		lp, err := x.Listen("park", 16)
		if err != nil {
			b.Fatal(err)
		}
		pattr := pthreads.DefaultAttr()
		pattr.Priority = s.Self().Priority() + 1
		held := make([]*pthreads.Conn, 0, parked)
		parkers := make([]*pthreads.Thread, 0, parked)
		for i := 0; i < parked; i++ {
			th, err := s.CreateCont(pattr, func(k *pthreads.Cont) {
				c, err := x.Dial("park")
				if err != nil {
					panic(err)
				}
				// Parks until the held end closes (EOF) — as a TCB plus
				// read state, no goroutine (see internal/core/cont.go).
				c.ContRead(k, 1, func(k *pthreads.Cont) { c.Close() })
			}, nil)
			if err != nil {
				b.Fatal(err)
			}
			parkers = append(parkers, th)
			sc, err := lp.Accept()
			if err != nil {
				b.Fatal(err)
			}
			held = append(held, sc)
		}

		c, err := x.Dial("echo")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		v0 := s.Now()
		for i := 0; i < b.N; i++ {
			if _, err := c.Write(64); err != nil {
				b.Fatal(err)
			}
			got := 0
			for got < 64 {
				n, err := c.Read(64)
				if err != nil {
					b.Fatal(err)
				}
				got += n
			}
		}
		b.StopTimer()
		reportVirtual(b, s, v0, b.N)
		c.Close()
		s.Join(server)
		for _, sc := range held {
			sc.Close()
		}
		for _, th := range parkers {
			s.Join(th)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// benchMutexMetrics is Table 2 row 3 (uncontended lock/unlock) with an
// optional metrics sink attached: the pair pins the cost of the
// profiling hooks on the hottest path. Both modes must report
// 0 allocs/op — the off mode because the hooks are nil checks, the on
// mode because the collector records into pre-sized tables.
func benchMutexMetrics(b *testing.B, sink pthreads.MetricsSink) {
	s := pthreads.New(pthreads.Config{Metrics: sink})
	err := s.Run(func() {
		m := s.MustMutex(pthreads.MutexAttr{Name: "bench"})
		m.Lock() // size the collector's mutex table before the timer
		m.Unlock()
		b.ReportAllocs()
		b.ResetTimer()
		v0 := s.Now()
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
		b.StopTimer()
		reportVirtual(b, s, v0, b.N)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMutexMetricsOff is the uncontended mutex path with the
// metrics hooks compiled in but no sink attached.
func BenchmarkMutexMetricsOff(b *testing.B) { benchMutexMetrics(b, nil) }

// BenchmarkMutexMetricsOn is the same path with the collector attached.
func BenchmarkMutexMetricsOn(b *testing.B) {
	benchMutexMetrics(b, metrics.New(metrics.Options{}))
}

// benchDispatchMetrics is the context-switch benchmark (Table 2 row 8)
// with an optional metrics sink: every yield drives the dispatcher's
// ThreadState hooks, so this is the per-dispatch hook cost.
func benchDispatchMetrics(b *testing.B, sink pthreads.MetricsSink) {
	s := pthreads.New(pthreads.Config{Metrics: sink})
	err := s.Run(func() {
		stop := false
		attr := pthreads.DefaultAttr()
		partner, _ := s.Create(attr, func(any) any {
			for !stop {
				s.Yield()
			}
			return nil
		}, nil)
		s.Yield() // size the collector's thread table before the timer
		b.ReportAllocs()
		b.ResetTimer()
		v0 := s.Now()
		for i := 0; i < b.N; i++ {
			s.Yield()
		}
		b.StopTimer()
		reportVirtual(b, s, v0, 2*b.N)
		stop = true
		s.Join(partner)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDispatchMetricsOff is two context switches per op, no sink.
func BenchmarkDispatchMetricsOff(b *testing.B) { benchDispatchMetrics(b, nil) }

// BenchmarkDispatchMetricsOn is the same with the collector attached.
func BenchmarkDispatchMetricsOn(b *testing.B) {
	benchDispatchMetrics(b, metrics.New(metrics.Options{}))
}
