// An Ada-style tasking application on the adart runtime — the layer the
// paper's implementation was built to support. A buffer task serves Put
// and Get entries through rendezvous with selective wait; producer and
// consumer tasks call the entries; a watchdog task demonstrates abort
// (Ada's abort mapped to pthread_cancel) and the delay alternative; and a
// computation shows a synchronous SIGFPE propagating as an Ada-style
// exception through the fake-call redirect hook.
package main

import (
	"fmt"

	"pthreads"
	"pthreads/internal/adart"
	"pthreads/internal/core"
	"pthreads/internal/unixkern"
)

const items = 10

func main() {
	sys := core.New(core.Config{})
	err := sys.Run(func() {
		rt := adart.New(sys)
		log := func(who, format string, args ...any) {
			fmt.Printf("[%10v] %-8s %s\n", sys.Now(), who, fmt.Sprintf(format, args...))
		}

		// task Buffer is
		//   entry Put(x); entry Get;
		// end Buffer;
		buffer, _ := rt.Spawn("buffer", 20, func(t *adart.Task) {
			var queue []int
			served := 0
			for served < 2*items {
				alts := []adart.Alternative{}
				// Guarded alternatives, Ada-style: accept Put while
				// there is space, Get while there is data.
				if len(queue) < 3 {
					alts = append(alts, adart.Alternative{Entry: "put", Body: func(arg any) (any, error) {
						queue = append(queue, arg.(int))
						return nil, nil
					}})
				}
				if len(queue) > 0 {
					alts = append(alts, adart.Alternative{Entry: "get", Body: func(any) (any, error) {
						v := queue[0]
						queue = queue[1:]
						return v, nil
					}})
				}
				if _, err := t.Select(alts, -1); err != nil {
					log("buffer", "select error: %v", err)
					return
				}
				served++
			}
			log("buffer", "served %d rendezvous, completing", served)
		})

		producer, _ := rt.Spawn("producer", 15, func(t *adart.Task) {
			for i := 1; i <= items; i++ {
				rt.Delay(300 * pthreads.Microsecond)
				if _, err := buffer.Call("put", i*i); err != nil {
					log("producer", "put failed: %v", err)
					return
				}
			}
			log("producer", "done")
		})

		consumer, _ := rt.Spawn("consumer", 15, func(t *adart.Task) {
			sum := 0
			for i := 0; i < items; i++ {
				v, err := buffer.Call("get", nil)
				if err != nil {
					log("consumer", "get failed: %v", err)
					return
				}
				sum += v.(int)
				rt.Delay(450 * pthreads.Microsecond)
			}
			log("consumer", "sum of squares = %d", sum)
		})

		// task Watchdog: waits on an entry nobody calls, with a delay
		// alternative; then gets aborted.
		watchdog, _ := rt.Spawn("watchdog", 25, func(t *adart.Task) {
			for {
				_, err := t.Select([]adart.Alternative{
					{Entry: "ping", Body: func(any) (any, error) { return "pong", nil }},
				}, 2*pthreads.Millisecond)
				if err == adart.ErrSelectTimeout {
					log("watchdog", "no ping within 2ms (delay alternative)")
					continue
				}
				if err != nil {
					return
				}
			}
		})

		producer.Await()
		consumer.Await()
		buffer.Await()

		log("main", "aborting the watchdog (Ada abort -> pthread_cancel)")
		watchdog.Abort()
		watchdog.Await()

		// Exception propagation from a synchronous signal: the handler
		// redirects control out of the signal frame, as the paper's Ada
		// runtime does to raise Constraint_Error.
		rt.WithExceptionHandler(
			[]unixkern.Signal{unixkern.SIGFPE},
			func() {
				log("main", "computing 1/0 ...")
				sys.RaiseSync(unixkern.SIGFPE, 1) // the faulting divide
				log("main", "unreachable")
			},
			func(e adart.Exception) {
				log("main", "caught exception: %v (Constraint_Error in Ada terms)", e)
			},
		)

		fmt.Printf("\nrendezvous served by buffer task: %d; virtual time: %v\n",
			buffer.Rendezvous, sys.Now())
	})
	if err != nil {
		fmt.Println("system error:", err)
	}
}
