// Producer/consumer over a bounded buffer, built twice: once with
// condition variables and once with counting semaphores (the layering
// the paper describes), under SCHED_RR time slicing. The run prints
// throughput and scheduling statistics for both variants.
package main

import (
	"fmt"

	"pthreads"
)

const (
	bufCap    = 8
	items     = 100
	producers = 3
	consumers = 2
)

// condVariant drives the buffer with a mutex and two condition variables.
func condVariant() (pthreads.Time, pthreads.Stats) {
	sys := pthreads.New(pthreads.Config{Quantum: 2 * pthreads.Millisecond})
	err := sys.Run(func() {
		m := sys.MustMutex(pthreads.MutexAttr{Name: "buffer"})
		notFull := sys.NewCond("notFull")
		notEmpty := sys.NewCond("notEmpty")
		var buf []int
		produced, consumed := 0, 0

		var threads []*pthreads.Thread
		for p := 0; p < producers; p++ {
			attr := pthreads.DefaultAttr()
			attr.Name = fmt.Sprintf("producer%d", p)
			attr.Policy = pthreads.SchedRR
			th, _ := sys.Create(attr, func(any) any {
				for {
					sys.Compute(300 * pthreads.Microsecond) // produce
					m.Lock()
					if produced >= items {
						m.Unlock()
						return nil
					}
					for len(buf) == bufCap {
						notFull.Wait(m)
					}
					buf = append(buf, produced)
					produced++
					notEmpty.Signal()
					m.Unlock()
				}
			}, nil)
			threads = append(threads, th)
		}
		for c := 0; c < consumers; c++ {
			attr := pthreads.DefaultAttr()
			attr.Name = fmt.Sprintf("consumer%d", c)
			attr.Policy = pthreads.SchedRR
			th, _ := sys.Create(attr, func(any) any {
				for {
					m.Lock()
					for len(buf) == 0 {
						if consumed >= items {
							m.Unlock()
							return nil
						}
						notEmpty.Wait(m)
					}
					buf = buf[:len(buf)-1]
					consumed++
					notFull.Signal()
					m.Unlock()
					sys.Compute(400 * pthreads.Microsecond) // consume
				}
			}, nil)
			threads = append(threads, th)
		}
		for _, th := range threads {
			sys.Join(th)
		}
		// Release any consumer still waiting after the last item.
		notEmpty.Broadcast()
	})
	if err != nil {
		panic(err)
	}
	return sys.Now(), sys.Stats()
}

// semVariant drives the buffer with counting semaphores (empty/full) plus
// a mutex, the classic Dijkstra construction the paper layers on mutex +
// condvar.
func semVariant() (pthreads.Time, pthreads.Stats) {
	sys := pthreads.New(pthreads.Config{Quantum: 2 * pthreads.Millisecond})
	err := sys.Run(func() {
		empty, _ := pthreads.NewSemaphore(sys, "empty", bufCap)
		full, _ := pthreads.NewSemaphore(sys, "full", 0)
		m := sys.MustMutex(pthreads.MutexAttr{Name: "buffer"})
		buf := 0

		var threads []*pthreads.Thread
		perProducer := items / producers
		for p := 0; p < producers; p++ {
			attr := pthreads.DefaultAttr()
			attr.Name = fmt.Sprintf("producer%d", p)
			attr.Policy = pthreads.SchedRR
			th, _ := sys.Create(attr, func(any) any {
				for i := 0; i < perProducer; i++ {
					sys.Compute(300 * pthreads.Microsecond)
					empty.P()
					m.Lock()
					buf++
					m.Unlock()
					full.V()
				}
				return nil
			}, nil)
			threads = append(threads, th)
		}
		perConsumer := (perProducer * producers) / consumers
		for c := 0; c < consumers; c++ {
			attr := pthreads.DefaultAttr()
			attr.Name = fmt.Sprintf("consumer%d", c)
			attr.Policy = pthreads.SchedRR
			th, _ := sys.Create(attr, func(any) any {
				for i := 0; i < perConsumer; i++ {
					full.P()
					m.Lock()
					buf--
					m.Unlock()
					empty.V()
					sys.Compute(400 * pthreads.Microsecond)
				}
				return nil
			}, nil)
			threads = append(threads, th)
		}
		for _, th := range threads {
			sys.Join(th)
		}
	})
	if err != nil {
		panic(err)
	}
	return sys.Now(), sys.Stats()
}

func main() {
	fmt.Printf("bounded buffer: %d items, %d producers, %d consumers, capacity %d, SCHED_RR\n\n",
		items, producers, consumers, bufCap)

	t1, s1 := condVariant()
	fmt.Printf("condition variables: %v virtual time, %d context switches, %d cond waits, %d preemptions\n",
		t1, s1.ContextSwitches, s1.CondWaits, s1.Preemptions)

	t2, s2 := semVariant()
	fmt.Printf("counting semaphores: %v virtual time, %d context switches, %d cond waits, %d preemptions\n",
		t2, s2.ContextSwitches, s2.CondWaits, s2.Preemptions)
}
