// Quickstart: create a thread system, spawn workers at different
// priorities, share a counter under a mutex, wait on a condition
// variable, and join everything — the core Pthreads vocabulary in one
// small program.
package main

import (
	"fmt"

	"pthreads"
)

func main() {
	sys := pthreads.New(pthreads.Config{})

	err := sys.Run(func() {
		fmt.Printf("main thread %v running at priority %d on %s\n",
			sys.Self(), sys.Self().Priority(), sys.Config().Machine.Name)

		mutex := sys.MustMutex(pthreads.MutexAttr{Name: "counter"})
		cond := sys.NewCond("all-done")
		counter := 0
		finished := 0
		const workers = 4

		var threads []*pthreads.Thread
		for i := 0; i < workers; i++ {
			attr := pthreads.DefaultAttr()
			attr.Name = fmt.Sprintf("worker%d", i)
			attr.Priority = pthreads.DefaultPrio - 1 - i // distinct priorities
			th, err := sys.Create(attr, func(arg any) any {
				id := arg.(int)
				for j := 0; j < 3; j++ {
					sys.Compute(2 * pthreads.Millisecond) // model real work
					mutex.Lock()
					counter++
					fmt.Printf("[%8v] worker%d increments counter to %d\n", sys.Now(), id, counter)
					mutex.Unlock()
				}
				mutex.Lock()
				finished++
				cond.Signal()
				mutex.Unlock()
				return (id + 1) * 100
			}, i)
			if err != nil {
				panic(err)
			}
			threads = append(threads, th)
		}

		// Wait for all workers using the condition variable (the
		// re-evaluated-predicate idiom the paper mandates).
		mutex.Lock()
		for finished < workers {
			cond.Wait(mutex)
		}
		mutex.Unlock()

		for i, th := range threads {
			status, err := sys.Join(th)
			if err != nil {
				panic(err)
			}
			fmt.Printf("worker%d exited with status %v\n", i, status)
		}

		fmt.Printf("\nfinal counter: %d (virtual time elapsed: %v)\n", counter, sys.Now())
		st := sys.Stats()
		fmt.Printf("context switches: %d, kernel entries: %d, preemptions: %d\n",
			st.ContextSwitches, st.KernelEntries, st.Preemptions)
	})
	if err != nil {
		fmt.Println("system error:", err)
	}
}
