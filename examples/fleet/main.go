// A virtual datacenter under fault injection: one round-robin load
// balancer (8 worker threads sharing the accept queue) fronts 4 replica
// hosts, loaded by 2,000 simulated users spread over 4 client hosts —
// nine machines, each with its own kernel, thread library, and TCP-like
// stack, advanced by one deterministic virtual clock.
//
// The fault script is on by default: replica r1 freezes for 15ms
// mid-run, the lb→r2 link drops 2% of its segments, and the lb→r3 link
// is one-way partitioned for a 10ms window. The client swarm's opening
// connection storm overflows the balancer's accept backlog, so early
// dials bounce with ECONNREFUSED and retry with backoff. None of it is
// allowed to lose a request: every user must complete or count an
// error, and the whole nine-host run must be bit-reproducible — the
// workload executes twice and the schedule fingerprint plus every
// host's trace stream are compared byte for byte; any mismatch exits 1.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sort"

	"pthreads/internal/core"
	"pthreads/internal/fabric"
	"pthreads/internal/io"
	"pthreads/internal/vtime"
)

const (
	replicas    = 4
	lbWorkers   = 8
	clientHosts = 4
	users       = 2000
	reqBytes    = 128
	rspBytes    = 512
	service     = 200 * vtime.Microsecond
	lbBacklog   = 64
	maxRetries  = 20
	// The first storm users per client host dial the instant the fleet
	// boots — 100 simultaneous SYNs against a backlog of 64, so the
	// opening storm overflows the balancer and the refused tail retries.
	// The rest arrive paced at one user per pace per host, just under
	// the balancer's capacity, so the swarm drains instead of melting.
	storm = 25
	pace  = 10 * vtime.Millisecond
)

// outcome is everything one fleet run produces; two runs must agree on
// every field and on the trace hash.
type outcome struct {
	fingerprint string
	traceHash   string
	served      [replicas]int
	done        int
	errors      int
	retries     int
	p50, p99    vtime.Duration
	makespan    vtime.Time
}

func run() outcome {
	var (
		served  [replicas]int
		lats    []vtime.Duration
		errors  int
		retries int
	)

	cfg := fabric.Config{
		Seed:  3,
		Trace: true,
		// The fault script: a frozen replica, a lossy link, a one-way
		// partition window.
		Pauses:     []fabric.HostPause{{Host: "r1", From: 30 * vtime.Time(vtime.Millisecond), To: 45 * vtime.Time(vtime.Millisecond)}},
		Loss:       []fabric.LinkLoss{{From: "lb", To: "r2", Rate: 0.02}},
		Partitions: []fabric.LinkPartition{{From: "lb", To: "r3", Start: 10 * vtime.Time(vtime.Millisecond), End: 20 * vtime.Time(vtime.Millisecond)}},
	}

	// The balancer: 8 workers share the accept queue; a shared counter
	// round-robins the backends.
	cfg.Hosts = append(cfg.Hosts, fabric.HostSpec{Name: "lb", Body: func(h *fabric.Host) error {
		l, err := h.IO.Listen("http", lbBacklog)
		if err != nil {
			return err
		}
		rr := 0
		for w := 0; w < lbWorkers; w++ {
			attr := core.DefaultAttr()
			attr.Name = fmt.Sprintf("lbw%d", w)
			if _, err := h.Sys.Create(attr, func(any) any {
				for {
					c, err := l.Accept()
					if err != nil {
						return nil
					}
					target := fmt.Sprintf("r%d:serve", rr%replicas)
					rr++
					forward(h, c, target)
				}
			}, nil); err != nil {
				return err
			}
		}
		// The main thread parks; the drain tears the host down.
		hold, err := h.IO.Listen("hold", 1)
		if err != nil {
			return err
		}
		_, err = hold.Accept()
		return err
	}})

	for i := 0; i < replicas; i++ {
		i := i
		cfg.Hosts = append(cfg.Hosts, fabric.HostSpec{Name: fmt.Sprintf("r%d", i), Body: func(h *fabric.Host) error {
			l, err := h.IO.Listen("serve", 256)
			if err != nil {
				return err
			}
			for n := 0; ; n++ {
				c, err := l.Accept()
				if err != nil {
					return err
				}
				attr := core.DefaultAttr()
				attr.Name = fmt.Sprintf("srv%d", n)
				if _, err := h.Sys.Create(attr, func(any) any {
					defer c.Close()
					if !pump(c.Read, reqBytes) {
						return nil
					}
					h.Sys.Compute(service)
					served[i]++
					c.Write(rspBytes)
					return nil
				}, nil); err != nil {
					return err
				}
			}
		}})
	}

	perHost := users / clientHosts
	for ch := 0; ch < clientHosts; ch++ {
		ch := ch
		name := fmt.Sprintf("c%d", ch)
		cfg.Drain = append(cfg.Drain, name)
		cfg.Hosts = append(cfg.Hosts, fabric.HostSpec{Name: name, Body: func(h *fabric.Host) error {
			sys := h.Sys
			ths := make([]*core.Thread, perHost)
			for j := 0; j < perHost; j++ {
				g := ch*perHost + j
				attr := core.DefaultAttr()
				attr.Name = fmt.Sprintf("u%d", g)
				th, err := sys.Create(attr, func(any) any {
					if j >= storm {
						sys.Sleep(vtime.Duration(j-storm+1) * pace)
					}
					start := sys.Clock().Now()
					// The opening storm overflows the balancer's backlog;
					// refused dials back off and retry.
					var c *io.Conn
					for try := 0; ; try++ {
						var err error
						c, err = h.IO.Dial("lb:http")
						if err == nil {
							break
						}
						if try == maxRetries {
							errors++
							return nil
						}
						retries++
						sys.Sleep(vtime.Duration(try+1) * vtime.Millisecond)
					}
					ok := true
					if _, err := c.Write(reqBytes); err != nil {
						ok = false
					}
					if ok {
						ok = pump(c.Read, rspBytes)
					}
					c.Close()
					if ok {
						lats = append(lats, sys.Clock().Now().Sub(start))
					} else {
						errors++
					}
					return nil
				}, nil)
				if err != nil {
					return err
				}
				ths[j] = th
			}
			for _, th := range ths {
				sys.Join(th)
			}
			return nil
		}})
	}

	f, err := fabric.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet: ", err)
		os.Exit(1)
	}
	if err := f.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleet: ", err)
		os.Exit(1)
	}

	out := outcome{
		fingerprint: f.Fingerprint(),
		served:      served,
		done:        len(lats),
		errors:      errors,
		retries:     retries,
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	if n := len(lats); n > 0 {
		out.p50 = lats[(n-1)*50/100]
		out.p99 = lats[(n-1)*99/100]
	}
	h := sha256.New()
	for _, host := range f.Hosts() {
		if now := host.Sys.Clock().Now(); now > out.makespan {
			out.makespan = now
		}
		fmt.Fprintf(h, "host %s\n", host.Name)
		for _, ev := range host.TraceEvents() {
			name := "-"
			if ev.Thread != nil {
				name = ev.Thread.Name()
			}
			fmt.Fprintf(h, "%d %s %s %s %s %s\n", ev.At, ev.Kind, name, ev.Obj, ev.Arg, ev.Detail)
		}
	}
	out.traceHash = hex.EncodeToString(h.Sum(nil)[:8])
	return out
}

// forward relays one balancer connection to its backend: request in,
// response back, both sides closed.
func forward(h *fabric.Host, c *io.Conn, target string) {
	defer c.Close()
	if !pump(c.Read, reqBytes) {
		return
	}
	b, err := h.IO.Dial(target)
	if err != nil {
		return
	}
	defer b.Close()
	if _, err := b.Write(reqBytes); err != nil {
		return
	}
	for got := 0; got < rspBytes; {
		n, err := b.Read(rspBytes)
		if err != nil {
			return
		}
		got += n
		if _, err := c.Write(n); err != nil {
			return
		}
	}
}

// pump reads until total bytes arrived (the byte-counting transport has
// no payloads, only counts).
func pump(read func(int) (int, error), total int) bool {
	for got := 0; got < total; {
		n, err := read(total)
		if err != nil {
			return false
		}
		got += n
	}
	return true
}

func main() {
	a := run()

	fmt.Printf("virtual datacenter: 1 lb (%d workers) + %d replicas + %d users on %d client hosts\n",
		lbWorkers, replicas, users, clientHosts)
	fmt.Printf("fault script: r1 paused 30–45ms, lb→r2 2%% loss, lb→r3 partitioned 10–20ms\n\n")
	fmt.Printf("completed %d/%d requests, %d errors, %d refused-dial retries\n", a.done, users, a.errors, a.retries)
	fmt.Printf("client latency: p50 %v, p99 %v; makespan %v\n", a.p50, a.p99, a.makespan)
	for i, n := range a.served {
		fmt.Printf("  r%d served %4d\n", i, n)
	}
	fmt.Printf("schedule fingerprint %s, trace hash %s\n", a.fingerprint, a.traceHash)

	b := run()
	if a != b {
		fmt.Printf("\nDETERMINISM VIOLATED:\n  run 1: %+v\n  run 2: %+v\n", a, b)
		os.Exit(1)
	}
	fmt.Println("\nsecond run: schedule fingerprint and all 9 host trace streams byte-identical — deterministic")
}
