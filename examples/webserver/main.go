// A many-client network workload on the blocking-I/O jacket layer: N
// worker threads share one listening socket and serve M clients, each
// request crossing the simulated wire into a bounded receive buffer,
// waking exactly one worker from the listener's priority-ordered wait
// queue. Workers overlap computation with other threads' I/O; clients
// refused by the bounded accept backlog back off and retry.
//
// The run is deterministic: the same workload is executed twice and must
// produce bit-identical schedules, verified by hashing the full trace.
// The printed per-worker tallies show priority-ordered wakeup — the
// highest-priority worker is always designated first when the listener
// becomes readable, so it serves the most connections.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"

	"pthreads"
	"pthreads/internal/core"
	"pthreads/internal/trace"
)

const (
	workers  = 8
	clients  = 64
	backlog  = 8
	reqBytes = 256
	rspBytes = 1024
)

type result struct {
	token    string
	elapsed  pthreads.Time
	served   [workers]int
	retries  int
	compute  pthreads.Duration
	stats    pthreads.Stats
	netStats pthreads.NetStats
}

// serve runs the workload once and returns its outcome, including a
// token hashed over every trace event.
func serve() result {
	rec := trace.New()
	sys := pthreads.New(pthreads.Config{Tracer: rec})
	var res result

	err := sys.Run(func() {
		x := pthreads.NewIO(sys, pthreads.NetConfig{RecvBuf: 2048, SendBuf: 2048})
		l, err := x.Listen("web", backlog)
		if err != nil {
			panic(err)
		}

		// Workers at distinct priorities above the clients: wakeup from
		// the listener's wait queue is priority-ordered, so worker 7
		// (the highest) is designated whenever it is waiting.
		var ws []*pthreads.Thread
		for w := 0; w < workers; w++ {
			attr := pthreads.DefaultAttr()
			attr.Name = fmt.Sprintf("worker%d", w)
			attr.Priority = sys.Self().Priority() + 2 + w
			idx := w
			th, _ := sys.Create(attr, func(any) any {
				for {
					c, err := l.Accept()
					if err != nil {
						return nil // EBADF: the listener closed, shift over
					}
					got := 0
					for got < reqBytes {
						n, err := c.Read(reqBytes)
						if err != nil {
							break
						}
						got += n
					}
					// Render the response: compute proportional to the
					// request, overlapping other threads' wire time.
					work := pthreads.Duration(got) * pthreads.Microsecond / 2
					sys.Compute(work)
					res.compute += work
					c.Write(rspBytes)
					c.Close()
					res.served[idx]++
				}
			}, nil)
			ws = append(ws, th)
		}

		// Clients dial, send a request, read the full response. A dial
		// refused by the full backlog backs off and retries.
		var cs []*pthreads.Thread
		for i := 0; i < clients; i++ {
			attr := pthreads.DefaultAttr()
			attr.Name = fmt.Sprintf("client%d", i)
			th, _ := sys.Create(attr, func(any) any {
				var c *pthreads.Conn
				for {
					var err error
					c, err = x.Dial("web")
					if err == nil {
						break
					}
					if e, ok := core.AsErrno(err); !ok || e != core.ECONNREFUSED {
						panic(err)
					}
					res.retries++
					sys.Sleep(500 * pthreads.Microsecond)
				}
				if _, err := c.Write(reqBytes); err != nil {
					panic(err)
				}
				got := 0
				for got < rspBytes {
					n, err := c.Read(rspBytes)
					if err != nil {
						panic(fmt.Sprintf("client read after %d: %v", got, err))
					}
					got += n
				}
				c.Close()
				return nil
			}, nil)
			cs = append(cs, th)
		}

		for _, th := range cs {
			sys.Join(th)
		}
		// All clients answered: close the listener, which wakes every
		// worker blocked in Accept with EBADF.
		l.Close()
		for _, th := range ws {
			sys.Join(th)
		}
		res.netStats = x.Stack().Stats()
	})
	if err != nil {
		panic(err)
	}

	h := sha256.New()
	for _, ev := range rec.Events {
		name := ""
		if ev.Thread != nil {
			name = ev.Thread.Name()
		}
		fmt.Fprintf(h, "%d %s %s %s %s %s\n", ev.At, ev.Kind, name, ev.Obj, ev.Arg, ev.Detail)
	}
	res.token = hex.EncodeToString(h.Sum(nil)[:8])
	res.elapsed = sys.Now()
	res.stats = sys.Stats()
	return res
}

func main() {
	a := serve()
	b := serve()

	fmt.Printf("webserver: %d workers, %d clients, backlog %d\n", workers, clients, backlog)
	fmt.Printf("trace token: %s\n", a.token)
	if a.token != b.token {
		fmt.Printf("NONDETERMINISTIC: second run produced %s\n", b.token)
		os.Exit(1)
	}
	fmt.Printf("deterministic: two runs, identical schedules\n\n")

	total := 0
	fmt.Println("priority-ordered wakeup (higher-priority workers serve more):")
	for w := workers - 1; w >= 0; w-- {
		fmt.Printf("  worker%d (prio +%d): %3d connections\n", w, 2+w, a.served[w])
		total += a.served[w]
	}
	fmt.Printf("  total %d served, %d dials refused and retried\n\n", total, a.retries)

	st := a.stats
	fmt.Printf("elapsed (virtual):  %v\n", a.elapsed)
	fmt.Printf("compute issued:     %v (overlap: compute continued while wires carried data)\n", a.compute)
	fmt.Printf("fd waits:           %d blocks, %d wakeups, max queue depth %d\n",
		st.FDWaits, st.FDWakeups, st.FDMaxWaitDepth)
	fmt.Printf("bytes through jacket: %d\n", st.FDBytes)
	ns := a.netStats
	fmt.Printf("network:            %d dials (%d refused), %d accepted, %d segments, %d B sent\n",
		ns.Dials, ns.Refused, ns.Accepted, ns.Segments, ns.BytesSent)
}
