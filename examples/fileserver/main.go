// A multi-threaded file server: worker threads pull requests from a
// shared queue (mutex + condition variable), read from simulated disks
// through the blocking-I/O jacket layer — each File.Read suspends its
// thread on the disk's descriptor until the SIGIO completion is
// demultiplexed back (recipient rule 4) — and compute a response. The
// run compares one disk against two, showing that threads overlap I/O
// with computation and that the contended device, not the CPU, bounds
// throughput.
package main

import (
	"fmt"

	"pthreads"
)

const (
	workers  = 4
	requests = 40
)

type request struct {
	id    int
	bytes int
}

type stats struct {
	served   int
	totalLat pthreads.Duration
	maxLat   pthreads.Duration
}

// serve runs the workload over the given number of disks and returns the
// elapsed virtual time and latency statistics.
func serve(disks int) (pthreads.Time, stats) {
	sys := pthreads.New(pthreads.Config{})
	var st stats

	err := sys.Run(func() {
		// The disks, opened as device files behind the jacket layer:
		// 2ms setup, 1µs/byte.
		x := pthreads.NewIO(sys, pthreads.NetConfig{})
		var devs []*pthreads.File
		for i := 0; i < disks; i++ {
			d, err := x.OpenFile(fmt.Sprintf("disk%d", i), 2*pthreads.Millisecond, pthreads.Microsecond)
			if err != nil {
				panic(err)
			}
			devs = append(devs, d)
		}

		// The request queue.
		m := sys.MustMutex(pthreads.MutexAttr{Name: "queue"})
		nonEmpty := sys.NewCond("nonEmpty")
		var queue []request
		closed := false
		arrivals := make([]pthreads.Time, requests)
		var started []*pthreads.Thread

		for w := 0; w < workers; w++ {
			attr := pthreads.DefaultAttr()
			attr.Name = fmt.Sprintf("worker%d", w)
			th, _ := sys.Create(attr, func(arg any) any {
				for {
					m.Lock()
					for len(queue) == 0 && !closed {
						nonEmpty.Wait(m)
					}
					if len(queue) == 0 {
						m.Unlock()
						return nil
					}
					req := queue[0]
					queue = queue[1:]
					m.Unlock()

					// Read from the disk the content lives on, then
					// render the response.
					dev := devs[req.id%len(devs)]
					n, err := dev.Read(req.bytes)
					if err != nil {
						panic(err)
					}
					sys.Compute(pthreads.Duration(n/8) * pthreads.Microsecond)

					lat := sys.Now().Sub(arrivals[req.id])
					m.Lock()
					st.served++
					st.totalLat += lat
					if lat > st.maxLat {
						st.maxLat = lat
					}
					m.Unlock()
				}
			}, w)
			started = append(started, th)
		}

		// The client: requests arrive every 800µs.
		for i := 0; i < requests; i++ {
			sys.Sleep(800 * pthreads.Microsecond)
			m.Lock()
			arrivals[i] = sys.Now()
			queue = append(queue, request{id: i, bytes: 512 + (i%4)*512})
			nonEmpty.Signal()
			m.Unlock()
		}
		m.Lock()
		closed = true
		nonEmpty.Broadcast()
		m.Unlock()

		for _, th := range started {
			sys.Join(th)
		}
	})
	if err != nil {
		panic(err)
	}
	return sys.Now(), st
}

func main() {
	fmt.Printf("file server: %d workers, %d requests (512–2048 bytes), disks at 2ms + 1µs/byte\n\n", workers, requests)
	for _, disks := range []int{1, 2} {
		elapsed, st := serve(disks)
		fmt.Printf("%d disk(s): served %d in %v  (mean latency %v, max %v)\n",
			disks, st.served, elapsed,
			st.totalLat/pthreads.Duration(st.served), st.maxLat)
	}
	fmt.Println("\nWith one disk the FIFO device queue is the bottleneck; adding a")
	fmt.Println("second overlaps transfers and cuts both latency and total time,")
	fmt.Println("while the worker threads overlap their response computation with")
	fmt.Println("other threads' I/O throughout — the library's asynchronous I/O")
	fmt.Println("demultiplexing (SIGIO to the requesting thread) at work.")
}
