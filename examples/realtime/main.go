// A rate-monotonic real-time task set — the application domain the
// paper's priority protocols exist for. Three periodic tasks share a
// resource; under plain mutexes the classic inversion (Figure 5's
// pattern, recurring every hyperperiod) makes the highest-rate task miss
// deadlines, while the priority-ceiling protocol bounds its blocking to
// one short critical section and every deadline is met.
package main

import (
	"fmt"

	"pthreads"
)

// One periodic task description. Rate-monotonic assignment: shorter
// period, higher priority.
type taskSpec struct {
	name     string
	priority int
	phase    pthreads.Duration // first release
	period   pthreads.Duration
	// work per job: pre computes outside the resource, cs inside it
	// (cs=0 means the task does not touch the resource), post after.
	pre, cs, post pthreads.Duration
	jobs          int
}

type taskResult struct {
	name        string
	misses      int
	maxResponse pthreads.Duration
}

var specs = []taskSpec{
	// τ1: period 10ms, 0.5ms + 1ms in the critical section.
	{name: "t1-fast", priority: 24, phase: 500 * pthreads.Microsecond,
		period: 10 * pthreads.Millisecond, pre: 500 * pthreads.Microsecond,
		cs: pthreads.Millisecond, jobs: 18},
	// τ2: period 25ms, 8ms of pure computation — the medium-priority
	// troublemaker that rides an inversion.
	{name: "t2-med", priority: 18, phase: 600 * pthreads.Microsecond,
		period: 25 * pthreads.Millisecond, pre: 8 * pthreads.Millisecond, jobs: 7},
	// τ3: period 50ms, holds the resource for 2.5ms each job.
	{name: "t3-slow", priority: 12, phase: 0,
		period: 50 * pthreads.Millisecond, cs: 2500 * pthreads.Microsecond,
		post: 500 * pthreads.Microsecond, jobs: 4},
}

// run executes the task set with the resource guarded by the given
// protocol and returns per-task deadline statistics.
func run(protocol pthreads.Protocol) []taskResult {
	sys := pthreads.New(pthreads.Config{MainPriority: 31})
	results := make([]taskResult, len(specs))

	err := sys.Run(func() {
		resource := sys.MustMutex(pthreads.MutexAttr{
			Name:     "resource",
			Protocol: protocol,
			Ceiling:  24, // the highest priority among locking tasks
		})

		var threads []*pthreads.Thread
		for i, spec := range specs {
			i, spec := i, spec
			attr := pthreads.DefaultAttr()
			attr.Name = spec.name
			attr.Priority = spec.priority
			th, _ := sys.Create(attr, func(any) any {
				res := taskResult{name: spec.name}
				sys.Sleep(spec.phase)
				next := sys.Now()
				for j := 0; j < spec.jobs; j++ {
					release := next
					next = next.Add(spec.period)
					// The job.
					if spec.pre > 0 {
						sys.Compute(spec.pre)
					}
					if spec.cs > 0 {
						resource.Lock()
						sys.Compute(spec.cs)
						resource.Unlock()
					}
					if spec.post > 0 {
						sys.Compute(spec.post)
					}
					response := sys.Now().Sub(release)
					if response > res.maxResponse {
						res.maxResponse = response
					}
					if sys.Now() > next {
						res.misses++ // deadline = next release
					} else {
						sys.Sleep(next.Sub(sys.Now()))
					}
				}
				results[i] = res
				return nil
			}, nil)
			threads = append(threads, th)
		}
		for _, th := range threads {
			sys.Join(th)
		}
	})
	if err != nil {
		panic(err)
	}
	return results
}

func main() {
	fmt.Println("rate-monotonic task set sharing one resource")
	fmt.Println("  t1-fast: T=10ms, C=1.5ms (1ms in CS), prio 24")
	fmt.Println("  t2-med:  T=25ms, C=8ms   (no CS),     prio 18")
	fmt.Println("  t3-slow: T=50ms, C=3ms   (2.5ms CS),  prio 12")
	fmt.Println()

	for _, protocol := range []pthreads.Protocol{pthreads.ProtocolNone, pthreads.ProtocolCeiling, pthreads.ProtocolInherit} {
		fmt.Printf("protocol: %v\n", protocol)
		for _, r := range run(protocol) {
			verdict := "all deadlines met"
			if r.misses > 0 {
				verdict = fmt.Sprintf("%d DEADLINE MISSES", r.misses)
			}
			fmt.Printf("  %-8s max response %10v   %s\n", r.name, r.maxResponse, verdict)
		}
		fmt.Println()
	}

	fmt.Println("Without a protocol, t2's 8ms of computation rides the inversion")
	fmt.Println("while t3 holds the resource t1 needs; with the ceiling (or")
	fmt.Println("inheritance) protocol t1's blocking is bounded by t3's one")
	fmt.Println("critical section, and the task set is schedulable.")
}
