// Dining philosophers, twice:
//
//  1. a deliberately broken variant (everyone picks up the left fork
//     first) run under the paper's perverted scheduling policies — the
//     mutex-switch policy forces the deadlock interleaving that plain
//     FIFO scheduling never produces, and the library's deadlock
//     detector reports it with every thread's wait target;
//  2. a correct variant using priority-ceiling mutexes and asymmetric
//     acquisition, which completes under every policy;
//  3. the schedule-exploration engine on a small broken table — bounded
//     search finds the deadlock, shrinks it to a minimal schedule token,
//     and replaying the token reproduces the byte-identical failing
//     trace.
//
// This is the paper's "perverted scheduling: testing and debugging"
// workflow as a runnable program, extended with record/replay.
package main

import (
	"fmt"
	"strings"

	"pthreads"
	"pthreads/internal/explore"
)

const (
	philosophers = 5
	meals        = 3
)

// dine runs the table; leftFirst selects the broken symmetric strategy.
func dine(policy pthreads.PervertPolicy, seed int64, leftFirst bool) error {
	sys := pthreads.New(pthreads.Config{Pervert: policy, Seed: seed})
	return sys.Run(func() {
		forks := make([]*pthreads.Mutex, philosophers)
		for i := range forks {
			// Ceiling mutexes: every philosopher runs at DefaultPrio, so
			// the ceiling is DefaultPrio; lock/unlock passes through the
			// kernel, giving the debug policies their switch points.
			forks[i] = sys.MustMutex(pthreads.MutexAttr{
				Name:     fmt.Sprintf("fork%d", i),
				Protocol: pthreads.ProtocolCeiling,
				Ceiling:  pthreads.DefaultPrio,
			})
		}

		var ths []*pthreads.Thread
		for i := 0; i < philosophers; i++ {
			attr := pthreads.DefaultAttr()
			attr.Name = fmt.Sprintf("philosopher%d", i)
			th, _ := sys.Create(attr, func(arg any) any {
				id := arg.(int)
				left, right := forks[id], forks[(id+1)%philosophers]
				first, second := left, right
				if !leftFirst && id == philosophers-1 {
					// Correct variant: the last philosopher reverses the
					// order, breaking the circular wait.
					first, second = right, left
				}
				for m := 0; m < meals; m++ {
					sys.Compute(500 * pthreads.Microsecond) // think
					first.Lock()
					second.Lock()
					sys.Compute(300 * pthreads.Microsecond) // eat
					second.Unlock()
					first.Unlock()
				}
				return nil
			}, i)
			ths = append(ths, th)
		}
		for _, th := range ths {
			sys.Join(th)
		}
	})
}

// verdict summarizes a run's outcome in one line.
func verdict(err error) string {
	if err == nil {
		return "completed — bug not observed"
	}
	line := err.Error()
	if i := strings.IndexByte(line, '\n'); i > 0 {
		line = line[:i]
	}
	return "DEADLOCK detected: " + line
}

func main() {
	fmt.Printf("%d philosophers, %d meals each\n\n", philosophers, meals)

	fmt.Println("== broken variant (symmetric left-first acquisition) ==")
	for _, policy := range []pthreads.PervertPolicy{
		pthreads.PervertNone, pthreads.PervertMutexSwitch,
	} {
		err := dine(policy, 7, true)
		fmt.Printf("  %-24s %s\n", policy, verdict(err))
	}
	// The random-switch policy finds the bug on some seeds — "varying
	// the initialization of random number generators ... proved to be a
	// simple but powerful way to influence the ordering of threads".
	for seed := int64(8); seed <= 13; seed++ {
		err := dine(pthreads.PervertRandom, seed, true)
		fmt.Printf("  random-switch (seed %2d) %s\n", seed, verdict(err))
	}

	fmt.Println("\n== correct variant (asymmetric acquisition, ceiling mutexes) ==")
	for _, policy := range []pthreads.PervertPolicy{
		pthreads.PervertNone, pthreads.PervertMutexSwitch, pthreads.PervertRROrdered, pthreads.PervertRandom,
	} {
		err := dine(policy, 7, false)
		verdict := "completed"
		if err != nil {
			verdict = "UNEXPECTED: " + err.Error()
		}
		fmt.Printf("  %-20s %s\n", policy, verdict)
	}

	fmt.Println("\n== schedule exploration (record/replay on a 3-seat table) ==")
	exploreDemo()

	fmt.Println("\nThe broken table survives plain FIFO scheduling — each philosopher")
	fmt.Println("runs to completion between blocking points — but the perverted")
	fmt.Println("policies force the fatal interleaving deterministically, the same")
	fmt.Println("seed reproduces it every run, and the exploration engine reduces")
	fmt.Println("the finding to a replay token that IS the repro.")
}

// exploreDemo runs the bounded-preemption search over a small broken
// table, shrinks the first failing schedule, and verifies that replaying
// the minimized token reproduces the identical failing trace.
func exploreDemo() {
	w := explore.PhilosophersWorkload(true, 3, 1)
	r := explore.ExploreBounded(w, explore.Options{Bound: 2, MaxRuns: 2000, LockOnly: true})
	if !r.Found {
		fmt.Printf("  UNEXPECTED: no deadlock in %d runs\n", r.Runs)
		return
	}
	fmt.Printf("  bounded search (bound 2, lock points): deadlock after %d runs\n", r.Runs)
	min, _ := explore.Shrink(w, r.Schedule)
	fmt.Printf("  minimized schedule token: %s\n", min.Token())
	a, b := explore.Replay(w, min), explore.Replay(w, min)
	if a.Failure != "" && a.TraceHash == b.TraceHash {
		fmt.Printf("  replay %s: trace %s, byte-identical both times — the token is the repro\n",
			min.Token(), a.TraceHash)
	} else {
		fmt.Printf("  UNEXPECTED: replay diverged (%s vs %s, failure %q)\n", a.TraceHash, b.TraceHash, a.Failure)
	}
}
