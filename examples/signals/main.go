// Signal handling tour: per-thread masks, a sigwait server thread
// consuming process-level signals, a handler delivered by fake call at
// the receiving thread's priority, alarm timers, an interrupted
// condition wait (spurious wakeup), and cancellation with cleanup
// handlers — the paper's whole signal machinery in one program.
package main

import (
	"fmt"

	"pthreads"
)

func main() {
	sys := pthreads.New(pthreads.Config{})

	err := sys.Run(func() {
		log := func(format string, args ...any) {
			fmt.Printf("[%10v] %-10s ", sys.Now(), sys.Self().Name())
			fmt.Printf(format+"\n", args...)
		}

		// 1. A sigwait server: main masks SIGUSR1 so the dedicated
		// thread is the only eligible recipient.
		sys.SetSigmask(pthreads.MakeSigset(pthreads.SIGUSR1))
		attr := pthreads.DefaultAttr()
		attr.Name = "sigserver"
		attr.Priority = pthreads.DefaultPrio + 2
		server, _ := sys.Create(attr, func(any) any {
			handled := 0
			sys.SetSigmask(pthreads.MakeSigset(pthreads.SIGUSR1))
			for handled < 3 {
				sig, err := sys.Sigwait(pthreads.MakeSigset(pthreads.SIGUSR1))
				if err != nil {
					log("sigwait error: %v", err)
					continue
				}
				handled++
				log("sigwait returned %v (%d/3)", sig, handled)
			}
			return handled
		}, nil)

		for i := 0; i < 3; i++ {
			sys.Compute(pthreads.Millisecond)
			log("raising SIGUSR1 at the process")
			sys.RaiseProcess(pthreads.SIGUSR1)
		}
		sys.Join(server)

		// 2. A handler delivered via fake call: the alarm is directed at
		// the thread that armed it (recipient rule 3) and the handler
		// runs at that thread's priority.
		sys.Sigaction(pthreads.SIGALRM, func(sig pthreads.Signal, info *pthreads.SigInfo, sc *pthreads.SigContext) {
			fmt.Printf("[%10v] %-10s handler for %v (cause %v) at priority %d\n",
				sys.Now(), sc.Thread().Name(), sig, info.Cause, sc.Thread().Priority())
		}, 0)
		attr2 := pthreads.DefaultAttr()
		attr2.Name = "worker"
		worker, _ := sys.Create(attr2, func(any) any {
			sys.Alarm(2 * pthreads.Millisecond)
			log("armed a 2ms alarm, computing 5ms")
			sys.Compute(5 * pthreads.Millisecond)
			log("computation done")
			return nil
		}, nil)
		sys.Join(worker)

		// 3. A handler interrupting a condition wait: the wrapper
		// reacquires the mutex before the handler runs, and the wait
		// returns spuriously.
		sys.Sigaction(pthreads.SIGUSR2, func(_ pthreads.Signal, _ *pthreads.SigInfo, sc *pthreads.SigContext) {
			fmt.Printf("[%10v] %-10s SIGUSR2 handler (interrupting a condition wait)\n",
				sys.Now(), sc.Thread().Name())
		}, 0)
		m := sys.MustMutex(pthreads.MutexAttr{Name: "m"})
		c := sys.NewCond("c")
		done := false
		attr3 := pthreads.DefaultAttr()
		attr3.Name = "waiter"
		attr3.Priority = pthreads.DefaultPrio + 1
		waiter, _ := sys.Create(attr3, func(any) any {
			m.Lock()
			wakeups := 0
			for !done {
				c.Wait(m)
				wakeups++
				log("woke from condition wait (#%d, done=%v)", wakeups, done)
			}
			m.Unlock()
			return wakeups
		}, nil)
		sys.Sleep(pthreads.Millisecond)
		sys.Kill(waiter, pthreads.SIGUSR2) // spurious wakeup
		sys.Sleep(pthreads.Millisecond)
		m.Lock()
		done = true
		c.Signal()
		m.Unlock()
		if v, _ := sys.Join(waiter); v != nil {
			log("waiter saw %v wakeups (first was spurious)", v)
		}

		// 4. Cancellation with cleanup handlers.
		attr4 := pthreads.DefaultAttr()
		attr4.Name = "victim"
		attr4.Priority = pthreads.DefaultPrio + 1
		victim, _ := sys.Create(attr4, func(any) any {
			sys.CleanupPush(func(arg any) {
				log("cleanup handler: releasing %v", arg)
			}, "resources")
			log("sleeping until cancelled")
			sys.Sleep(pthreads.Second)
			return "never"
		}, nil)
		sys.Cancel(victim)
		status, _ := sys.Join(victim)
		log("victim exit status: %v", status)

		st := sys.Stats()
		fmt.Printf("\nsignals: %d internal, %d external; fake calls: %d; cancellations: %d\n",
			st.SignalsInternal, st.SignalsExternal, st.FakeCalls, st.Cancellations)
		fmt.Printf("sigsetmask system calls: %d (at most two per received signal)\n",
			sys.Kernel().SyscallCounts["sigsetmask"])
	})
	if err != nil {
		fmt.Println("system error:", err)
	}
}
