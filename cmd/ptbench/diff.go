package main

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// Perf-regression gate: -diff compares the latest -host run in
// BENCH_host.json against every run in its history array and fails
// (non-zero exit) when a benchmark got materially worse. The gate knows
// the two kinds of metric the suite emits:
//
//   - vus/op and allocs/op are pure functions of the simulation — the
//     virtual clock and the allocator see the same program on every
//     machine — so the latest run is held against EVERY history entry;
//     any drift past the tolerance is a real regression, not noise.
//
//   - ns/op is host time. It moves with the machine, the load, and the
//     toolchain, so it is only compared against history entries whose
//     go_version/goos/goarch AND cpu fingerprint match the latest run
//     — two containers with the same toolchain but different silicon
//     disagree by 1.5x on these microbenchmarks, which is noise, not
//     regression. The tolerance then absorbs same-machine jitter.
//
// Benchmarks present only in the latest run (newly added) or only in
// history (since removed) are skipped: the gate polices regressions,
// not coverage.

// diffTolerance is the fractional slowdown the gate forgives: a value
// is a regression when latest > baseline * (1 + tolerance).
const diffTolerance = 0.15

// strictMetrics are deterministic per-op values gated against all of
// history; hostMetrics are wall-clock values gated only against
// same-environment history.
var (
	strictMetrics = []string{"vus/op", "allocs/op"}
	hostMetrics   = []string{"ns/op"}
)

// diffRegression is one gate violation.
type diffRegression struct {
	Bench    string  // pkg-qualified benchmark name
	Metric   string  // which metric regressed
	Latest   float64 // value in the latest run
	Baseline float64 // best comparable history value
	Against  string  // which history run supplied the baseline
}

func (r diffRegression) String() string {
	if r.Baseline == 0 {
		return fmt.Sprintf("%s %s: %g vs 0 in %s (was free, now isn't)",
			r.Bench, r.Metric, r.Latest, r.Against)
	}
	return fmt.Sprintf("%s %s: %g vs %g in %s (+%.0f%%, tolerance %.0f%%)",
		r.Bench, r.Metric, r.Latest, r.Baseline, r.Against,
		(r.Latest/r.Baseline-1)*100, diffTolerance*100)
}

// runLabel names a history entry in gate output.
func runLabel(i int, run hostRun) string {
	if run.GeneratedAt != "" {
		return fmt.Sprintf("history[%d] (%s)", i, run.GeneratedAt)
	}
	return fmt.Sprintf("history[%d]", i)
}

// benchKey indexes a bench across runs.
func benchKey(b hostBench) string { return b.Pkg + "." + b.Name }

// sameEnv reports whether two runs' host environments are comparable
// for wall-clock metrics: same toolchain, same OS/arch, same machine.
// A run with no recorded CPU fingerprint is comparable to nothing.
func sameEnv(a, b hostRun) bool {
	return a.GoVersion == b.GoVersion && a.GOOS == b.GOOS && a.GOARCH == b.GOARCH &&
		a.CPU != "" && a.CPU == b.CPU
}

// diffRuns gates latest against one history entry and returns the
// violations found. strict selects the deterministic metric set (true)
// or the host-time set (false).
func diffRuns(latest map[string]hostBench, i int, old hostRun, metrics []string) []diffRegression {
	var regs []diffRegression
	for _, ob := range old.Benches {
		lb, ok := latest[benchKey(ob)]
		if !ok {
			continue // benchmark since removed or renamed
		}
		for _, m := range metrics {
			base, okB := ob.Metrics[m]
			cur, okL := lb.Metrics[m]
			if !okB || !okL {
				continue
			}
			if cur > base*(1+diffTolerance) {
				regs = append(regs, diffRegression{
					Bench: benchKey(ob), Metric: m,
					Latest: cur, Baseline: base, Against: runLabel(i, old),
				})
			}
		}
	}
	return regs
}

// c1mBudget mirrors the runner/goroutine bound eval.RunC1M enforces at
// measurement time: a parked population must cost O(pool) goroutines,
// never O(threads). The gate re-checks the recorded document so a
// stale or hand-edited point cannot smuggle a scaling regression past
// verify.
const c1mBudget = 8

// diffC1M gates the resident-footprint section. The deterministic
// gauges (parked count, runner peak, goroutine delta) are held to the
// absolute budget and to every same-population history entry; bytes
// per resident is host heap, so it is only compared against entries
// whose Go version and CPU fingerprint match, with the usual
// tolerance.
func diffC1M(sec *c1mSection) []diffRegression {
	if sec == nil {
		return nil
	}
	var regs []diffRegression
	bench := fmt.Sprintf("c1m[%d threads]", sec.Point.Threads)
	abs := func(metric string, latest, budget float64) {
		if latest > budget {
			regs = append(regs, diffRegression{
				Bench: bench, Metric: metric,
				Latest: latest, Baseline: budget, Against: "absolute budget",
			})
		}
	}
	if sec.Point.ContParked != int64(sec.Point.Threads) {
		regs = append(regs, diffRegression{
			Bench: bench, Metric: "cont_parked",
			Latest: float64(sec.Point.ContParked), Baseline: float64(sec.Point.Threads),
			Against: "resident population (threads not parked as continuations)",
		})
	}
	abs("runner_peak", float64(sec.Point.RunnerPeak), c1mBudget)
	abs("goroutine_delta", float64(sec.Point.GoroutineDelta), c1mBudget)

	for i, old := range sec.History {
		if old.Point.Threads != sec.Point.Threads {
			continue // footprints at different populations are not comparable
		}
		against := fmt.Sprintf("c1m history[%d] (%s)", i, old.GeneratedAt)
		grow := func(metric string, latest, base float64) {
			if latest > base*(1+diffTolerance) {
				regs = append(regs, diffRegression{
					Bench: bench, Metric: metric,
					Latest: latest, Baseline: base, Against: against,
				})
			}
		}
		grow("runner_peak", float64(sec.Point.RunnerPeak), float64(old.Point.RunnerPeak))
		grow("goroutine_delta", float64(sec.Point.GoroutineDelta), float64(old.Point.GoroutineDelta))
		if old.GoVersion == sec.GoVersion && old.CPU != "" && old.CPU == sec.CPU {
			grow("bytes_per_resident", sec.Point.BytesPerResident, old.Point.BytesPerResident)
		}
	}
	return regs
}

// runDiff is the -diff entry point: load the report, gate the latest
// run against history, print the verdict. A regression is an error so
// the process exits non-zero — verify.sh builds on that.
func runDiff(path string) error {
	report, err := loadHostReport(path)
	if err != nil {
		return err
	}
	if len(report.Benches) == 0 {
		return fmt.Errorf("%s has no latest run to gate (run -host first)", path)
	}
	// The c1m budgets are absolute, so that gate runs even when the
	// host benches have no history yet.
	regs := diffC1M(report.C1M)
	if len(report.History) == 0 && len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "ptbench: %s has no history; nothing to gate against\n", path)
		return nil
	}

	latest := make(map[string]hostBench, len(report.Benches))
	for _, b := range report.Benches {
		latest[benchKey(b)] = b
	}

	compared, envMatched := 0, 0
	for i, old := range report.History {
		regs = append(regs, diffRuns(latest, i, old, strictMetrics)...)
		compared++
		if sameEnv(report.hostRun, old) {
			regs = append(regs, diffRuns(latest, i, old, hostMetrics)...)
			envMatched++
		}
	}

	// Report each distinct (bench, metric) once, against its worst
	// baseline — the smallest value it regressed from.
	worst := map[string]diffRegression{}
	for _, r := range regs {
		k := r.Bench + " " + r.Metric
		if prev, ok := worst[k]; !ok || r.Baseline < prev.Baseline {
			worst[k] = r
		}
	}
	keys := make([]string, 0, len(worst))
	for k := range worst {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	if len(keys) > 0 {
		var b strings.Builder
		fmt.Fprintf(&b, "%d perf regression(s) past %.0f%% in %s:\n",
			len(keys), diffTolerance*100, path)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s\n", worst[k])
		}
		return fmt.Errorf("%s", strings.TrimRight(b.String(), "\n"))
	}
	fmt.Fprintf(os.Stderr,
		"ptbench: diff ok — latest run within %.0f%% of %d history run(s) (%d machine-matched for ns/op)\n",
		diffTolerance*100, compared, envMatched)
	return nil
}
