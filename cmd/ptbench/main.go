// Command ptbench regenerates the paper's evaluation tables against the
// reproduction: Table 2 (performance metrics), Table 1 (cancellation
// actions), and the ablation studies (TCB/stack pooling, lock
// primitives, Ada-layer rendezvous overhead).
//
// Usage:
//
//	ptbench               # Table 2
//	ptbench -table 1      # Table 1 cancellation matrix
//	ptbench -ablation     # pooling / lock-primitive / rendezvous ablations
//	ptbench -attrib       # where the context-switch time goes
//	ptbench -host         # host-machine Go benchmarks -> BENCH_host.json
//	ptbench -c1m          # resident-thread footprint (parked continuations)
//	ptbench -diff         # perf-regression gate: latest run vs history
package main

import (
	"flag"
	"fmt"
	"os"

	"pthreads/internal/eval"
)

func main() {
	table := flag.Int("table", 2, "paper table to regenerate (1 or 2)")
	ablation := flag.Bool("ablation", false, "run the ablation studies")
	attrib := flag.Bool("attrib", false, "print the context-switch cost attribution")
	netio := flag.Bool("net", false, "run the blocking-I/O jacket pressure scenario")
	host := flag.Bool("host", false, "run host-machine Go benchmarks and write JSON")
	hostOut := flag.String("hostout", "BENCH_host.json", "output path for -host and -c10k results")
	hostBench := flag.String("hostbench", defaultHostPattern, "benchmark pattern for -host")
	c10k := flag.Bool("c10k", false, "run the C10k thread-scaling suite and merge into the JSON")
	c10kMax := flag.Int("c10kmax", 10000, "largest thread count for -c10k (1000000 climbs the full C1M ladder)")
	c10kReps := flag.Int("c10kreps", 3, "repetitions per -c10k point (min host cost kept)")
	c1m := flag.Bool("c1m", false, "measure the resident-thread footprint and merge into the JSON")
	c1mThreads := flag.Int("c1mthreads", 1000000, "resident population for -c1m")
	c1mOut := flag.String("c1mout", "BENCH_host.json", "output path for -c1m results (empty: print only)")
	smp := flag.Bool("smp", false, "run the simulated-SMP lock contention ladder and merge into the JSON")
	smpVCPUs := flag.String("smpvcpus", "1,2,4,8", "comma-separated VCPU counts for -smp")
	smpIters := flag.Int("smpiters", 300, "lock/unlock cycles per thread for -smp")
	smpOut := flag.String("smpout", "BENCH_host.json", "output path for -smp results (empty: print only)")
	dc := flag.Bool("dc", false, "run the virtual-datacenter replica/loss ladder and merge into the JSON")
	dcClients := flag.Int("dcclients", 200, "simulated users per -dc point")
	dcReplicas := flag.String("dcreplicas", "1,2,4", "comma-separated replica counts for -dc")
	dcLoss := flag.String("dcloss", "0,0.01,0.05", "comma-separated lb->replica loss rates for -dc")
	dcOut := flag.String("dcout", "BENCH_host.json", "output path for -dc results (empty: print only)")
	diff := flag.Bool("diff", false, "gate the latest -host run against the report's history (non-zero exit on regression)")
	diffPath := flag.String("diffpath", "BENCH_host.json", "report to gate with -diff")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ptbench: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *diff {
		exitOn(runDiff(*diffPath))
		return
	}
	if *host {
		exitOn(runHost(*hostBench, *hostOut))
		return
	}
	if *c10k {
		exitOn(runC10K(*c10kMax, *c10kReps, *hostOut))
		return
	}
	if *c1m {
		exitOn(runC1M(*c1mThreads, *c1mOut))
		return
	}
	if *smp {
		exitOn(runSMP(*smpVCPUs, *smpIters, *smpOut))
		return
	}
	if *dc {
		exitOn(runDC(*dcReplicas, *dcLoss, *dcClients, *dcOut))
		return
	}
	if *ablation {
		out, err := eval.FormatAblations()
		exitOn(err)
		fmt.Print(out)
		return
	}
	if *attrib {
		out, err := eval.FormatAttribution()
		exitOn(err)
		fmt.Print(out)
		return
	}
	if *netio {
		out, err := eval.FormatIOStats()
		exitOn(err)
		fmt.Print(out)
		return
	}

	switch *table {
	case 1:
		out, err := eval.FormatTable1()
		exitOn(err)
		fmt.Print(out)
	case 2:
		rows, err := eval.Table2()
		exitOn(err)
		fmt.Print(eval.FormatTable2(rows))
	default:
		fmt.Fprintf(os.Stderr, "ptbench: no such table %d\n", *table)
		os.Exit(2)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptbench:", err)
		os.Exit(1)
	}
}
