package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Host-benchmark mode: -host runs the repository's hot-path Go
// benchmarks on the host machine (real nanoseconds, not virtual time)
// and writes the parsed results as JSON. Checked-in snapshots of this
// file (BENCH_host.json) form the performance trajectory of the
// reproduction itself across PRs, alongside the virtual-time tables that
// must never move.
//
// Regenerate with:
//
//	go run ./cmd/ptbench -host
//
// The default pattern covers the scheduler-queue and synchronization
// fast paths plus the core composite latencies; -hostbench overrides it.
const defaultHostPattern = "EnqueueDequeue|PeekMaxLoaded|Remove$|MutexNoContention|" +
	"MutexProtocols|ContextSwitch$|SemaphoreSync$|ThreadCreate$|RingRecorderEvent|NetEcho|" +
	"MutexMetricsOn$|MutexMetricsOff$|DispatchMetricsOn$|DispatchMetricsOff$"

// hostBench is one parsed benchmark result line.
type hostBench struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// hostReport is the BENCH_host.json document.
type hostReport struct {
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	Pattern   string      `json:"pattern"`
	Command   string      `json:"command"`
	Benches   []hostBench `json:"benches"`
}

// benchLine matches "BenchmarkName-8   123456   97.5 ns/op   0 B/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// runHost executes the benchmarks and writes the JSON report to outPath.
func runHost(pattern, outPath string) error {
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem", "-count", "1", "./..."}
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "ptbench: running go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}

	report := hostReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Pattern:   pattern,
		Command:   "go " + strings.Join(args, " "),
	}

	pkg := ""
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := hostBench{Pkg: pkg, Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		report.Benches = append(report.Benches, b)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(report.Benches) == 0 {
		return fmt.Errorf("no benchmark lines matched pattern %q", pattern)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ptbench: wrote %d results to %s\n", len(report.Benches), outPath)
	return nil
}
