package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"pthreads/internal/eval"
)

// Host-benchmark mode: -host runs the repository's hot-path Go
// benchmarks on the host machine (real nanoseconds, not virtual time)
// and writes the parsed results as JSON. The file keeps the latest run
// at the top level and every previous run in a history array, so the
// checked-in BENCH_host.json carries the performance trajectory of the
// reproduction itself across PRs, alongside the virtual-time tables
// that must never move. -c10k runs the thread-scaling suite and merges
// its section into the same document.
//
// Regenerate with:
//
//	go run ./cmd/ptbench -host
//	go run ./cmd/ptbench -c10k
//
// The default pattern covers the scheduler-queue and synchronization
// fast paths plus the core composite latencies; -hostbench overrides it.
// The NetEcho / NetEchoSpans pair records the observability plane's
// cost on the hottest I/O path — and NetEcho's allocs/op staying 0 with
// spans off is a -diff-gated contract.
const defaultHostPattern = "EnqueueDequeue|PeekMaxLoaded|Remove$|MutexNoContention|" +
	"MutexProtocols|ContextSwitch$|SemaphoreSync$|ThreadCreate$|RingRecorderEvent|NetEcho$|" +
	"NetEchoSpans$|MutexMetricsOn$|MutexMetricsOff$|DispatchMetricsOn$|DispatchMetricsOff$"

// hostBench is one parsed benchmark result line.
type hostBench struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// hostRun is one -host sweep: the environment it ran in plus its parsed
// results. The latest run is embedded at the top of the report; earlier
// runs are kept verbatim in the history array.
type hostRun struct {
	GeneratedAt string `json:"generated_at,omitempty"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	// CPU fingerprints the machine (model name + logical count). The
	// -diff gate only compares wall-clock metrics between runs whose
	// fingerprints match: go version and OS alone do not make two
	// machines' nanoseconds comparable. Runs recorded before the field
	// existed have none and are never wall-clock-gated.
	CPU     string      `json:"cpu,omitempty"`
	Pattern string      `json:"pattern"`
	Command string      `json:"command"`
	Benches []hostBench `json:"benches"`
}

// hostCPU builds the machine fingerprint: the CPU model from
// /proc/cpuinfo where available (the arch as a stand-in elsewhere),
// plus the logical CPU count.
func hostCPU() string {
	model := runtime.GOARCH
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if rest, ok := strings.CutPrefix(line, "model name"); ok {
				model = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), ":"))
				break
			}
		}
	}
	return fmt.Sprintf("%s x%d", model, runtime.NumCPU())
}

// c10kSection is the thread-scaling suite's slot in the report.
type c10kSection struct {
	GeneratedAt string           `json:"generated_at,omitempty"`
	Command     string           `json:"command"`
	Points      []eval.C10KPoint `json:"points"`
}

// c1mEntry is one prior -c1m measurement kept in the section's own
// history. The section carries its history inline (unlike the -host
// benches) because a footprint point is tied to the environment that
// produced it: heap bytes move with the Go version and the machine,
// while the gauges (parked count, runner peak, goroutine delta) are
// deterministic.
type c1mEntry struct {
	GeneratedAt string        `json:"generated_at,omitempty"`
	GoVersion   string        `json:"go_version,omitempty"`
	CPU         string        `json:"cpu,omitempty"`
	Point       eval.C1MPoint `json:"point"`
}

// c1mSection is the resident-footprint measurement's slot: the latest
// point plus every prior one. The -diff gate holds the latest point to
// the runner/goroutine budgets absolutely, and to its history for
// growth (bytes per resident only against matching environments).
type c1mSection struct {
	GeneratedAt string        `json:"generated_at,omitempty"`
	Command     string        `json:"command"`
	GoVersion   string        `json:"go_version,omitempty"`
	CPU         string        `json:"cpu,omitempty"`
	Point       eval.C1MPoint `json:"point"`
	History     []c1mEntry    `json:"history,omitempty"`
}

// smpSection is the simulated-SMP contention ladder's slot. Its points
// are pure virtual-time measurements, so unlike the host benches they
// are bit-identical on every machine.
type smpSection struct {
	GeneratedAt string          `json:"generated_at,omitempty"`
	Command     string          `json:"command"`
	Points      []eval.SMPPoint `json:"points"`
}

// dcSection is the virtual-datacenter replica/loss ladder's slot; like
// the SMP ladder its points are pure virtual-time measurements.
type dcSection struct {
	GeneratedAt string         `json:"generated_at,omitempty"`
	Command     string         `json:"command"`
	Points      []eval.DCPoint `json:"points"`
}

// hostReport is the BENCH_host.json document.
type hostReport struct {
	hostRun
	C10K    *c10kSection `json:"c10k,omitempty"`
	C1M     *c1mSection  `json:"c1m,omitempty"`
	SMP     *smpSection  `json:"smp,omitempty"`
	DC      *dcSection   `json:"dc,omitempty"`
	History []hostRun    `json:"history,omitempty"`
}

// loadHostReport reads an existing report so a new run can extend it; a
// missing file yields an empty report, a corrupt one an error (refuse
// to silently discard recorded history).
func loadHostReport(path string) (hostReport, error) {
	var r hostReport
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return r, nil
	}
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("parse existing %s: %w", path, err)
	}
	return r, nil
}

func writeHostReport(path string, r hostReport) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// benchLine matches "BenchmarkName-8   123456   97.5 ns/op   0 B/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// runHost executes the benchmarks and merges the results into the JSON
// report at outPath: the previous latest run (if any) is pushed onto
// the history array, and any recorded C10k section is carried forward.
func runHost(pattern, outPath string) error {
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem", "-count", "1", "./..."}
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "ptbench: running go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}

	run := hostRun{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPU:         hostCPU(),
		Pattern:     pattern,
		Command:     "go " + strings.Join(args, " "),
	}

	pkg := ""
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := hostBench{Pkg: pkg, Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		run.Benches = append(run.Benches, b)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(run.Benches) == 0 {
		return fmt.Errorf("no benchmark lines matched pattern %q", pattern)
	}

	report, err := loadHostReport(outPath)
	if err != nil {
		return err
	}
	if len(report.Benches) > 0 {
		report.History = append(report.History, report.hostRun)
	}
	report.hostRun = run
	if err := writeHostReport(outPath, report); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ptbench: wrote %d results to %s (%d prior runs in history)\n",
		len(run.Benches), outPath, len(report.History))
	return nil
}

// runC10K runs the thread-scaling suite up to maxThreads, prints the
// table, and merges the points into the report's c10k section (the
// benches and history are untouched).
func runC10K(maxThreads, reps int, outPath string) error {
	var sizes []int
	for _, n := range eval.C10KSizes {
		if n <= maxThreads {
			sizes = append(sizes, n)
		}
	}
	if len(sizes) == 0 {
		return fmt.Errorf("-c10kmax %d admits no ladder sizes %v", maxThreads, eval.C10KSizes)
	}
	pts, err := eval.RunC10K(sizes, reps)
	if err != nil {
		return err
	}
	fmt.Print(eval.FormatC10K(pts))

	report, err := loadHostReport(outPath)
	if err != nil {
		return err
	}
	report.C10K = &c10kSection{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Command:     fmt.Sprintf("go run ./cmd/ptbench -c10k -c10kmax %d -c10kreps %d", maxThreads, reps),
		Points:      pts,
	}
	if err := writeHostReport(outPath, report); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ptbench: merged %d c10k points into %s\n", len(pts), outPath)
	return nil
}

// runC1M measures the resident-thread footprint at the requested
// population, prints the point, and merges it into the report's c1m
// section, pushing the previous point onto the section's history.
// eval.RunC1M fails outright when a resource invariant breaks (a
// parked thread holding a goroutine, the runner pool scaling with the
// population), so a recorded point is always one where the
// representation held; -diff then polices growth across records.
func runC1M(threads int, outPath string) error {
	pt, err := eval.RunC1M(threads)
	if err != nil {
		return err
	}
	fmt.Print(eval.FormatC1M(pt))
	if outPath == "" {
		return nil
	}

	report, err := loadHostReport(outPath)
	if err != nil {
		return err
	}
	sec := report.C1M
	if sec == nil {
		sec = &c1mSection{}
	}
	if sec.Point.Threads != 0 {
		sec.History = append(sec.History, c1mEntry{
			GeneratedAt: sec.GeneratedAt,
			GoVersion:   sec.GoVersion,
			CPU:         sec.CPU,
			Point:       sec.Point,
		})
	}
	sec.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	sec.Command = fmt.Sprintf("go run ./cmd/ptbench -c1m -c1mthreads %d", threads)
	sec.GoVersion = runtime.Version()
	sec.CPU = hostCPU()
	sec.Point = pt
	report.C1M = sec
	if err := writeHostReport(outPath, report); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ptbench: merged c1m point (%d threads) into %s (%d prior points)\n",
		threads, outPath, len(sec.History))
	return nil
}

// runSMP runs the simulated-SMP contention ladder, prints the
// deterministic table, and merges the points into the report's smp
// section. With an empty outPath the table is printed without touching
// any report — the determinism gate uses that to diff two runs' stdout.
func runSMP(vcpus string, iters int, outPath string) error {
	var cpus []int
	for _, f := range strings.Split(vcpus, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return fmt.Errorf("-smpvcpus %q: %w", vcpus, err)
		}
		cpus = append(cpus, n)
	}
	pts, err := eval.RunSMPLadder(cpus, iters)
	if err != nil {
		return err
	}
	fmt.Print(eval.FormatSMP(pts))
	if outPath == "" {
		return nil
	}

	report, err := loadHostReport(outPath)
	if err != nil {
		return err
	}
	report.SMP = &smpSection{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Command:     fmt.Sprintf("go run ./cmd/ptbench -smp -smpvcpus %s -smpiters %d", vcpus, iters),
		Points:      pts,
	}
	if err := writeHostReport(outPath, report); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ptbench: merged %d smp points into %s\n", len(pts), outPath)
	return nil
}

// runDC runs the virtual-datacenter ladder, prints the deterministic
// table, and merges the points into the report's dc section. With an
// empty outPath the table is printed without touching any report — the
// determinism gate diffs two runs' stdout.
func runDC(replicaCSV, lossCSV string, clients int, outPath string) error {
	var replicas []int
	for _, f := range strings.Split(replicaCSV, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return fmt.Errorf("-dcreplicas %q: %w", replicaCSV, err)
		}
		replicas = append(replicas, n)
	}
	var losses []float64
	for _, f := range strings.Split(lossCSV, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return fmt.Errorf("-dcloss %q: %w", lossCSV, err)
		}
		losses = append(losses, v)
	}
	pts, err := eval.RunDCLadder(replicas, losses, clients)
	if err != nil {
		return err
	}
	fmt.Print(eval.FormatDC(pts))
	if outPath == "" {
		return nil
	}

	report, err := loadHostReport(outPath)
	if err != nil {
		return err
	}
	report.DC = &dcSection{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Command: fmt.Sprintf("go run ./cmd/ptbench -dc -dcreplicas %s -dcloss %s -dcclients %d",
			replicaCSV, lossCSV, clients),
		Points: pts,
	}
	if err := writeHostReport(outPath, report); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ptbench: merged %d dc points into %s\n", len(pts), outPath)
	return nil
}
