package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// The synthetic fixture plants five distinct regression shapes — a
// deterministic vus/op slowdown, an allocs/op creep from zero, an
// env-matched ns/op blowup, a c1m runner-pool peak past the absolute
// budget, and a c1m bytes/resident growth against a matched-env
// footprint record — plus two deltas that must NOT trip the gate: a
// cross-environment ns/op difference and a cross-environment
// bytes/resident difference.
func TestDiffFlagsSyntheticRegression(t *testing.T) {
	err := runDiff(filepath.Join("testdata", "regression.json"))
	if err == nil {
		t.Fatal("gate passed a fixture with planted >15% regressions")
	}
	msg := err.Error()
	for _, want := range []string{
		"BenchmarkNetEcho vus/op: 160 vs 100",
		"BenchmarkContextSwitch allocs/op: 2 vs 0",
		"BenchmarkContextSwitch ns/op: 900 vs 400",
		"c1m[1000000 threads] runner_peak: 4096 vs 1",
		"c1m[1000000 threads] bytes_per_resident: 2600 vs 1150",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("gate output missing %q:\n%s", want, msg)
		}
	}
	// history[1] is a darwin/arm64 go1.23 run whose tiny ns/op would
	// make every wall-clock comparison "regress"; the env filter must
	// keep it out of the ns/op gate entirely. The c1m section carries
	// the same trap: an other-machine record with tiny heap bytes.
	if strings.Contains(msg, "BenchmarkNetEcho ns/op") {
		t.Errorf("gate compared ns/op across mismatched host environments:\n%s", msg)
	}
	if strings.Contains(msg, "bytes_per_resident: 2600 vs 100 ") {
		t.Errorf("gate compared bytes/resident across mismatched host environments:\n%s", msg)
	}
	if !strings.Contains(msg, "5 perf regression(s)") {
		t.Errorf("want exactly 5 deduplicated regressions, got:\n%s", msg)
	}
}

// A c1m point whose gauges blow the absolute budget must fail even
// when the report has no host-bench history to compare against (the
// budget is a property of the representation, not of a baseline), and
// a within-budget point must pass the same history-less report.
func TestDiffC1MAbsoluteBudget(t *testing.T) {
	dir := t.TempDir()
	write := func(goroutines int) string {
		path := filepath.Join(dir, "c1m.json")
		data := `{"go_version":"go1.24.0","goos":"linux","goarch":"amd64",` +
			`"pattern":"X","command":"c",` +
			`"benches":[{"pkg":"p","name":"BenchmarkX","iterations":1,"metrics":{"ns/op":1}}],` +
			`"c1m":{"command":"c","point":{"threads":1000,"bytes_per_resident":1100,` +
			`"runner_peak":1,"goroutine_delta":` + strconv.Itoa(goroutines) +
			`,"cont_parked":1000,"arena_chunks":2,"arena_slot_bytes":792,` +
			`"setup_host_ms":1,"drain_host_ms":1}}}`
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	if err := runDiff(write(1000)); err == nil {
		t.Error("gate passed a goroutine-backed population (delta 1000 for 1000 threads)")
	} else if !strings.Contains(err.Error(), "goroutine_delta: 1000 vs 8") {
		t.Errorf("unexpected gate output: %v", err)
	}
	if err := runDiff(write(1)); err != nil {
		t.Errorf("gate failed a within-budget history-less c1m point: %v", err)
	}
}

// The clean fixture moves within tolerance, adds a new benchmark with
// no baseline, and drops an old one — none of which is a regression.
func TestDiffPassesCleanReport(t *testing.T) {
	if err := runDiff(filepath.Join("testdata", "clean.json")); err != nil {
		t.Fatalf("gate failed a clean report: %v", err)
	}
}

// A report without history has nothing to gate against and must pass
// (the first -host run on a fresh checkout should not fail verify).
func TestDiffNoHistory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.json")
	data := `{"go_version":"go1.24.0","goos":"linux","goarch":"amd64",` +
		`"pattern":"X","command":"c",` +
		`"benches":[{"pkg":"p","name":"BenchmarkX","iterations":1,"metrics":{"ns/op":1}}]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runDiff(path); err != nil {
		t.Fatalf("gate failed a history-less report: %v", err)
	}
}

// Missing and empty reports are loud errors, not silent passes.
func TestDiffBadInputs(t *testing.T) {
	if err := runDiff(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("gate passed a missing report")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(path, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runDiff(path); err == nil {
		t.Error("gate passed a report with no latest run")
	}
}
