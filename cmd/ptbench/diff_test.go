package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The synthetic fixture plants three distinct regression shapes — a
// deterministic vus/op slowdown, an allocs/op creep from zero, and an
// env-matched ns/op blowup — plus a cross-environment ns/op delta that
// must NOT trip the gate.
func TestDiffFlagsSyntheticRegression(t *testing.T) {
	err := runDiff(filepath.Join("testdata", "regression.json"))
	if err == nil {
		t.Fatal("gate passed a fixture with planted >15% regressions")
	}
	msg := err.Error()
	for _, want := range []string{
		"BenchmarkNetEcho vus/op: 160 vs 100",
		"BenchmarkContextSwitch allocs/op: 2 vs 0",
		"BenchmarkContextSwitch ns/op: 900 vs 400",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("gate output missing %q:\n%s", want, msg)
		}
	}
	// history[1] is a darwin/arm64 go1.23 run whose tiny ns/op would
	// make every wall-clock comparison "regress"; the env filter must
	// keep it out of the ns/op gate entirely.
	if strings.Contains(msg, "BenchmarkNetEcho ns/op") {
		t.Errorf("gate compared ns/op across mismatched host environments:\n%s", msg)
	}
	if !strings.Contains(msg, "3 perf regression(s)") {
		t.Errorf("want exactly 3 deduplicated regressions, got:\n%s", msg)
	}
}

// The clean fixture moves within tolerance, adds a new benchmark with
// no baseline, and drops an old one — none of which is a regression.
func TestDiffPassesCleanReport(t *testing.T) {
	if err := runDiff(filepath.Join("testdata", "clean.json")); err != nil {
		t.Fatalf("gate failed a clean report: %v", err)
	}
}

// A report without history has nothing to gate against and must pass
// (the first -host run on a fresh checkout should not fail verify).
func TestDiffNoHistory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.json")
	data := `{"go_version":"go1.24.0","goos":"linux","goarch":"amd64",` +
		`"pattern":"X","command":"c",` +
		`"benches":[{"pkg":"p","name":"BenchmarkX","iterations":1,"metrics":{"ns/op":1}}]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runDiff(path); err != nil {
		t.Fatalf("gate failed a history-less report: %v", err)
	}
}

// Missing and empty reports are loud errors, not silent passes.
func TestDiffBadInputs(t *testing.T) {
	if err := runDiff(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("gate passed a missing report")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(path, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runDiff(path); err == nil {
		t.Error("gate passed a report with no latest run")
	}
}
