// Command ptpervert demonstrates the paper's perverted scheduling debug
// policies: a latent data race that plain FIFO scheduling never exposes
// manifests deterministically under the mutex-switch, RR-ordered-switch,
// and random-switch policies, and the random policy's seed sweep shows
// how varying PRNG initialization varies thread orderings reproducibly.
//
// Usage:
//
//	ptpervert [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"pthreads/internal/eval"
)

func main() {
	seed := flag.Int64("seed", 1, "PRNG seed for the random-switch policy")
	flag.Parse()

	out, err := eval.FormatPervert(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptpervert:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
