// Command pttrace runs a canned scenario with the trace recorder
// attached and prints its ASCII timeline — the visual debugging aid the
// paper's future-work section sketches ("context switches could become
// visible to the user").
//
// Usage:
//
//	pttrace [-scenario inversion|rr|prodcons|signals] [-width N] [-dump]
//	        [-max-events N]
package main

import (
	"flag"
	"fmt"
	"os"

	"pthreads"
	"pthreads/internal/core"
	"pthreads/internal/trace"
)

func main() {
	scenario := flag.String("scenario", "inversion", "inversion | rr | prodcons | signals")
	width := flag.Int("width", 76, "timeline width in characters")
	dump := flag.Bool("dump", false, "also print the raw event list")
	maxEvents := flag.Int("max-events", 0, "cap the recorder at N events (0 = unbounded); dropped events are reported")
	flag.Parse()

	rec := trace.NewCapped(*maxEvents)
	var mutexName string

	switch *scenario {
	case "inversion":
		mutexName = "M"
		runInversion(rec)
	case "rr":
		runRR(rec)
	case "prodcons":
		mutexName = "buffer"
		runProdCons(rec)
	case "signals":
		runSignals(rec)
	default:
		fmt.Fprintf(os.Stderr, "pttrace: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	fmt.Printf("scenario %q:\n", *scenario)
	fmt.Print(rec.Timeline(mutexName, *width))
	if n := rec.Dropped(); n > 0 {
		fmt.Printf("(recorder cap %d reached: %d events dropped; the timeline covers the recorded prefix)\n",
			rec.MaxEvents, n)
	}
	if *dump {
		fmt.Println()
		fmt.Print(rec.Dump())
	}
}

// runInversion replays the Figure 5(a) inversion under no protocol.
func runInversion(rec *trace.Recorder) {
	sys := core.New(core.Config{Tracer: rec, MainPriority: 31})
	check(sys.Run(func() {
		m := sys.MustMutex(pthreads.MutexAttr{Name: "M"})
		mk := func(name string, prio int, body func()) *pthreads.Thread {
			attr := pthreads.DefaultAttr()
			attr.Name = name
			attr.Priority = prio
			th, _ := sys.Create(attr, func(any) any { body(); return nil }, nil)
			return th
		}
		p1 := mk("P1-low", 5, func() {
			sys.Compute(2 * pthreads.Millisecond)
			m.Lock()
			sys.Compute(20 * pthreads.Millisecond)
			m.Unlock()
		})
		p2 := mk("P2-med", 10, func() {
			sys.Sleep(5 * pthreads.Millisecond)
			sys.Compute(25 * pthreads.Millisecond)
		})
		p3 := mk("P3-high", 20, func() {
			sys.Sleep(5 * pthreads.Millisecond)
			m.Lock()
			sys.Compute(3 * pthreads.Millisecond)
			m.Unlock()
		})
		for _, th := range []*pthreads.Thread{p1, p2, p3} {
			sys.Join(th)
		}
	}))
}

// runRR shows round-robin slicing of three compute-bound threads.
func runRR(rec *trace.Recorder) {
	sys := core.New(core.Config{Tracer: rec, Quantum: 2 * pthreads.Millisecond})
	check(sys.Run(func() {
		var ths []*pthreads.Thread
		for i := 0; i < 3; i++ {
			attr := pthreads.DefaultAttr()
			attr.Policy = pthreads.SchedRR
			attr.Name = fmt.Sprintf("rr%d", i)
			th, _ := sys.Create(attr, func(any) any {
				sys.Compute(8 * pthreads.Millisecond)
				return nil
			}, nil)
			ths = append(ths, th)
		}
		for _, th := range ths {
			sys.Join(th)
		}
	}))
}

// runProdCons shows a producer and consumer hand-off over a buffer.
func runProdCons(rec *trace.Recorder) {
	sys := core.New(core.Config{Tracer: rec})
	check(sys.Run(func() {
		m := sys.MustMutex(pthreads.MutexAttr{Name: "buffer"})
		notEmpty := sys.NewCond("notEmpty")
		items := 0
		attr := pthreads.DefaultAttr()
		attr.Name = "producer"
		prod, _ := sys.Create(attr, func(any) any {
			for i := 0; i < 5; i++ {
				sys.Compute(2 * pthreads.Millisecond)
				m.Lock()
				items++
				notEmpty.Signal()
				m.Unlock()
			}
			return nil
		}, nil)
		attr.Name = "consumer"
		cons, _ := sys.Create(attr, func(any) any {
			for i := 0; i < 5; i++ {
				m.Lock()
				for items == 0 {
					notEmpty.Wait(m)
				}
				items--
				m.Unlock()
				sys.Compute(3 * pthreads.Millisecond)
			}
			return nil
		}, nil)
		sys.Join(prod)
		sys.Join(cons)
	}))
}

// runSignals shows an alarm interrupting computation and a directed kill
// waking a sleeper.
func runSignals(rec *trace.Recorder) {
	sys := core.New(core.Config{Tracer: rec})
	check(sys.Run(func() {
		sys.Sigaction(pthreads.SIGALRM, func(pthreads.Signal, *pthreads.SigInfo, *pthreads.SigContext) {
			sys.Compute(pthreads.Millisecond)
		}, 0)
		sys.Sigaction(pthreads.SIGUSR1, func(pthreads.Signal, *pthreads.SigInfo, *pthreads.SigContext) {
			sys.Compute(pthreads.Millisecond)
		}, 0)
		attr := pthreads.DefaultAttr()
		attr.Name = "computer"
		comp, _ := sys.Create(attr, func(any) any {
			sys.Alarm(3 * pthreads.Millisecond)
			sys.Compute(8 * pthreads.Millisecond)
			return nil
		}, nil)
		attr.Name = "sleeper"
		attr.Priority = pthreads.DefaultPrio + 1
		slp, _ := sys.Create(attr, func(any) any {
			sys.Sleep(pthreads.Second)
			return nil
		}, nil)
		sys.Sleep(5 * pthreads.Millisecond)
		sys.Kill(slp, pthreads.SIGUSR1)
		sys.Join(comp)
		sys.Join(slp)
	}))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pttrace:", err)
		os.Exit(1)
	}
}
