// Command ptreport regenerates every reproduced artifact of the paper's
// evaluation in one run — Table 2 on both machines, Table 1, Figure 5
// with the Table 3 quantification, Table 4 in both unlock modes, the
// perverted-scheduling experiment, the ablation studies, and the
// context-switch attribution. Its output is the body of EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"pthreads/internal/eval"
)

func main() {
	// The exploration and profile sections are opt-in so the default
	// report stays byte-stable across releases that only add new
	// experiments.
	withExplore := flag.Bool("explore", false, "append the schedule-exploration section")
	withProfile := flag.Bool("profile", false, "append the virtual-time profiler section")
	withFleet := flag.Bool("fleet", false, "append the fleet observability section")
	withMem := flag.Bool("mem", false, "append the resident-thread memory section")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ptreport: unexpected arguments: %v\n", flag.Args())
		os.Exit(1)
	}
	sections := []func() (string, error){
		func() (string, error) {
			rows, err := eval.Table2()
			if err != nil {
				return "", err
			}
			return eval.FormatTable2(rows), nil
		},
		eval.FormatTable1,
		eval.FormatFigure5,
		eval.FormatTable4,
		func() (string, error) { return eval.FormatPervert(1) },
		eval.FormatAblations,
		eval.FormatAttribution,
		eval.FormatSyscallProfiles,
		eval.FormatUtilizationSweep,
		eval.FormatQueueStats,
		eval.FormatIOStats,
	}
	if *withExplore {
		sections = append(sections, eval.FormatExplore)
	}
	if *withProfile {
		sections = append(sections, eval.FormatProfile)
	}
	if *withFleet {
		sections = append(sections, eval.FormatFleetObs)
	}
	if *withMem {
		sections = append(sections, eval.FormatMem)
	}
	for i, f := range sections {
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptreport: section %d: %v\n", i, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Println()
	}
}
