package main

import (
	"fmt"
	"os"
	"strings"

	"pthreads/internal/explore"
	"pthreads/internal/fabric"
)

// Fleet mode: the same explore/replay/check verbs, but over a whole
// virtual datacenter. The schedule token is host-qualified
// ("f1:h1/2/0"); the race checker is the fleet variant, whose
// happens-before edges include cross-host message delivery.

func fleetScenario(name string) fabric.Scenario {
	sc := fabric.FleetScenarioByName(name)
	if sc == nil {
		var known []string
		for _, s := range fabric.FleetScenarios() {
			known = append(known, s.Name)
		}
		fmt.Fprintf(os.Stderr, "ptexplore: unknown fleet scenario %q (have: %s)\n", name, strings.Join(known, ", "))
		os.Exit(2)
	}
	return *sc
}

// doFleetExplore runs the bounded fleet search and verifies any finding
// by double replay.
func doFleetExplore(sc fabric.Scenario, opts explore.Options, alwaysRaces bool, expect string) {
	fmt.Printf("fleet scenario %s: %s\n", sc.Name, sc.Desc)
	points := "lock+kernel-exit"
	if opts.LockOnly {
		points = "lock-only"
	}
	fmt.Printf("policy bounded: preemption bound %d, %s points, max %d runs\n", opts.Bound, points, opts.MaxRuns)
	r := fabric.ExploreFleetBounded(sc, opts)
	if !r.Found {
		fmt.Printf("clean: no failure in %d runs\n", r.Runs)
		assertExpect(expect, false, true)
		return
	}

	fmt.Printf("FAILURE after %d runs: %s\n", r.Runs, r.Failure)
	fmt.Printf("  schedule: %s (%d forced decisions)\n", r.Schedule.Token(), len(r.Schedule.Decisions))
	a := fabric.RunFleetSchedule(sc, r.Schedule)
	b := fabric.RunFleetSchedule(sc, r.Schedule)
	identical := a.TraceHash == b.TraceHash && a.Failure != ""
	fmt.Printf("  replay: trace %s, fingerprint %s, failure %q\n", a.TraceHash, a.Fingerprint, a.Failure)
	if identical {
		fmt.Println("  replay determinism: byte-identical fleet traces across replays — one-line repro verified")
	} else {
		fmt.Printf("  replay determinism: VIOLATED (%s vs %s, failure %q)\n", a.TraceHash, b.TraceHash, a.Failure)
	}
	printFleetRaces(a, alwaysRaces || a.Failure != "")
	assertExpect(expect, identical, false)
}

// doFleetReplay replays one host-qualified token.
func doFleetReplay(sc fabric.Scenario, token string, alwaysRaces bool) {
	sched, err := fabric.ParseFleetToken(token)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptexplore:", err)
		os.Exit(2)
	}
	out := fabric.RunFleetSchedule(sc, sched)
	fmt.Printf("fleet scenario %s, schedule %s\n", sc.Name, sched.Token())
	fmt.Printf("  trace %s, fingerprint %s, decisions taken %s\n", out.TraceHash, out.Fingerprint, out.Schedule.Token())
	if out.Failure != "" {
		fmt.Printf("  FAILURE: %s\n", out.Failure)
	} else {
		fmt.Println("  clean run")
	}
	printFleetRaces(out, alwaysRaces || out.Failure != "")
}

// doFleetCheckReplay is the CI determinism check across the fleet: two
// unforced runs must agree byte for byte, and a forced single-decision
// schedule (the first switch point the unforced run exposes) must
// replay to identical traces twice.
func doFleetCheckReplay(sc fabric.Scenario) {
	a := fabric.RunFleetSchedule(sc, fabric.FleetSchedule{})
	b := fabric.RunFleetSchedule(sc, fabric.FleetSchedule{})
	fmt.Printf("fleet scenario %s: unforced trace %s, fingerprint %s\n", sc.Name, a.TraceHash, a.Fingerprint)
	if a.TraceHash != b.TraceHash || a.Fingerprint != b.Fingerprint {
		fmt.Printf("  fleet determinism: VIOLATED (%s/%s vs %s/%s)\n", a.Fingerprint, a.TraceHash, b.Fingerprint, b.TraceHash)
		os.Exit(1)
	}
	var forced *fabric.FleetSchedule
	for _, pt := range a.Points {
		if pt.NReady > 0 {
			forced = &fabric.FleetSchedule{Decisions: []fabric.FleetDecision{{Host: pt.Host, Index: pt.Index, Pick: 0}}}
			break
		}
	}
	if forced == nil {
		fmt.Println("  fleet determinism: unforced runs byte-identical (no preemptible switch points to force)")
		return
	}
	fa := fabric.RunFleetSchedule(sc, *forced)
	fb := fabric.RunFleetSchedule(sc, *forced)
	fmt.Printf("  forced schedule %s: trace %s\n", forced.Token(), fa.TraceHash)
	if fa.TraceHash != fb.TraceHash {
		fmt.Printf("  replay determinism: VIOLATED (%s vs %s)\n", fa.TraceHash, fb.TraceHash)
		os.Exit(1)
	}
	fmt.Println("  fleet determinism: unforced and forced replays byte-identical across runs")
}

// printFleetRaces runs the cross-host race checker over the outcome.
func printFleetRaces(out fabric.FleetOutcome, run bool) {
	if !run {
		return
	}
	races := out.Races()
	if len(races) == 0 {
		fmt.Println("  race checker: no data races on annotated accesses")
		return
	}
	fmt.Printf("  race checker: %d racy access pair(s)\n", len(races))
	for _, line := range strings.Split(strings.TrimRight(explore.FormatRaces(races), "\n"), "\n") {
		fmt.Println("    " + line)
	}
}
