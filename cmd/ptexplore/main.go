// Command ptexplore drives the schedule-exploration engine: it sweeps
// seeds (PCT) or systematically enumerates bounded-preemption schedules
// over a workload's switch points, shrinks the first failing schedule to
// a minimal replay token, verifies the token reproduces the
// byte-identical failing trace, and runs the happens-before + lockset
// race checker over the trace.
//
// Usage:
//
//	ptexplore -list
//	ptexplore -workload racy-counter -policy bounded -bound 1
//	ptexplore -workload philosophers-broken -policy bounded -bound 2 -lock-only
//	ptexplore -workload racy-counter -policy pct -seeds 20
//	ptexplore -workload racy-counter -replay v1:3/0 -races
//	ptexplore -workload racy-counter -check-replay
//
// With -fleet, the same verbs run over a whole virtual datacenter: the
// bounded search explores per-host preemptions of a multi-host
// scenario, tokens are host-qualified ("f1:h1/2/0"), and the race
// checker draws happens-before edges across the network fabric.
//
//	ptexplore -fleet fleet-lost-wakeup -races
//	ptexplore -fleet fleet-echo -check-replay
//	ptexplore -fleet fleet-lost-wakeup -replay f1:h1/2/0 -races
//
// The -expect flag makes the exit status a CI assertion: "found" fails
// the process unless a bug was found (and its minimized schedule
// replayed byte-identically); "clean" fails it unless the exploration
// came back clean.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pthreads/internal/core"
	"pthreads/internal/explore"
	"pthreads/internal/fabric"
	"pthreads/internal/lockeng"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list built-in workloads and exit")
		workload = flag.String("workload", "racy-counter", "workload name (see -list)")
		policy   = flag.String("policy", "bounded", "exploration policy: bounded or pct")
		bound    = flag.Int("bound", 2, "preemption bound of the systematic search")
		maxRuns  = flag.Int("max-runs", 2000, "cap on runs per exploration")
		lockOnly = flag.Bool("lock-only", false, "branch only at mutex-acquisition points")
		seeds    = flag.Int("seeds", 20, "PCT: number of seeds to sweep")
		seedBase = flag.Int64("seed-base", 1, "PCT: first seed")
		depth    = flag.Int("depth", 3, "PCT: bug depth d (d-1 priority-change points)")
		horizon  = flag.Int("horizon", 1000, "PCT: switch-point horizon for change points")
		fleet    = flag.String("fleet", "", "explore a fleet scenario instead of a workload (see -list)")
		replay   = flag.String("replay", "", "replay a schedule token instead of exploring")
		check    = flag.Bool("check-replay", false, "record a run, replay it twice, verify byte-identical traces")
		races    = flag.Bool("races", false, "always run the race checker (on by default for failing runs)")
		expect   = flag.String("expect", "", "CI assertion: found or clean")
		parallel = flag.Int("parallel", 1, "worker goroutines for the sweep (0 = GOMAXPROCS); results are byte-identical for any value")
		nPhil    = flag.Int("philosophers", 3, "philosophers workloads: table size")
		meals    = flag.Int("meals", 1, "philosophers workloads: meals per philosopher")
		threads  = flag.Int("threads", 3, "counter workloads: worker threads")
		iters    = flag.Int("iters", 4, "counter workloads: increments per worker")
	)
	flag.Parse()

	if *list {
		for _, w := range explore.Workloads() {
			fmt.Printf("  %-22s %s\n", w.Name, w.Desc)
		}
		for _, sc := range fabric.FleetScenarios() {
			fmt.Printf("  %-22s (fleet) %s\n", sc.Name, sc.Desc)
		}
		return
	}

	if *fleet != "" {
		sc := fleetScenario(*fleet)
		opts := explore.Options{MaxRuns: *maxRuns, Bound: *bound, LockOnly: *lockOnly}
		switch {
		case *replay != "":
			doFleetReplay(sc, *replay, *races)
		case *check:
			doFleetCheckReplay(sc)
		default:
			doFleetExplore(sc, opts, *races, *expect)
		}
		return
	}

	w, ok := buildWorkload(*workload, *nPhil, *meals, *threads, *iters)
	if !ok {
		fmt.Fprintf(os.Stderr, "ptexplore: unknown workload %q (try -list)\n", *workload)
		os.Exit(2)
	}
	nw := *parallel
	if nw == 0 {
		nw = -1 // Options.Parallel: negative = GOMAXPROCS
	}
	opts := explore.Options{
		MaxRuns: *maxRuns, Bound: *bound, LockOnly: *lockOnly,
		Seeds: *seeds, SeedBase: *seedBase, Depth: *depth, Horizon: *horizon,
		Parallel: nw,
	}

	switch {
	case *replay != "":
		doReplay(w, *replay, *races)
	case *check:
		doCheckReplay(w, *seedBase, *depth, *horizon)
	default:
		doExplore(w, *policy, opts, *races, *expect)
	}
}

func buildWorkload(name string, nPhil, meals, threads, iters int) (explore.Workload, bool) {
	switch name {
	case "philosophers-broken":
		return explore.PhilosophersWorkload(true, nPhil, meals), true
	case "philosophers-fixed":
		return explore.PhilosophersWorkload(false, nPhil, meals), true
	case "racy-counter":
		return explore.RacyCounterWorkload(true, threads, iters), true
	case "racy-counter-fixed":
		return explore.RacyCounterWorkload(false, threads, iters), true
	case "sock-echo":
		return explore.SockEchoWorkload(2, 64), true
	case "sock-lost-wakeup":
		return explore.SockLostWakeupWorkload(true, 64), true
	case "sock-lost-wakeup-fixed":
		return explore.SockLostWakeupWorkload(false, 64), true
	case "lock-mcs-handoff":
		return explore.LockEngineWorkload(name, lockeng.KindMCS, threads, 3, 0), true
	case "lock-ticket-wrap":
		return explore.LockEngineWorkload(name, lockeng.KindTicket, threads, 4, 0xFFFB), true
	case "lock-unfair":
		return explore.LockEngineWorkload(name, lockeng.KindUnfair, threads, 3, 0), true
	case "lock-unfair-fixed":
		return explore.LockEngineWorkload(name, lockeng.KindUnfairFixed, threads, 3, 0), true
	}
	return explore.Workload{}, false
}

// doExplore runs the chosen policy, then shrinks, replays, and
// race-checks any finding.
func doExplore(w explore.Workload, policy string, opts explore.Options, alwaysRaces bool, expect string) {
	fmt.Printf("workload %s: %s\n", w.Name, w.Desc)
	var r explore.Result
	switch policy {
	case "bounded":
		points := "lock+kernel-exit"
		if opts.LockOnly {
			points = "lock-only"
		}
		fmt.Printf("policy bounded: preemption bound %d, %s points, max %d runs\n", opts.Bound, points, opts.MaxRuns)
		r = explore.ExploreBounded(w, opts)
	case "pct":
		fmt.Printf("policy pct: %d seeds from %d, depth %d, horizon %d\n", opts.Seeds, opts.SeedBase, opts.Depth, opts.Horizon)
		r = explore.ExplorePCT(w, opts)
	default:
		fmt.Fprintf(os.Stderr, "ptexplore: unknown policy %q\n", policy)
		os.Exit(2)
	}

	if !r.Found {
		fmt.Printf("clean: no failure in %d runs\n", r.Runs)
		assertExpect(expect, false, true)
		return
	}

	fmt.Printf("FAILURE after %d runs: %s\n", r.Runs, r.Failure)
	if r.Policy == "pct" {
		fmt.Printf("  found by seed %d\n", r.Seed)
	}
	fmt.Printf("  recorded schedule:  %s (%d preemptions)\n", r.Schedule.Token(), r.Schedule.Len())

	min, shrinkRuns := explore.Shrink(w, r.Schedule)
	fmt.Printf("  minimized schedule: %s (%d preemptions, %d shrink runs)\n", min.Token(), min.Len(), shrinkRuns)

	a, b := explore.Replay(w, min), explore.Replay(w, min)
	identical := a.TraceHash == b.TraceHash && a.Failure != ""
	fmt.Printf("  replay: trace %s, failure %q\n", a.TraceHash, a.Failure)
	if identical {
		fmt.Println("  replay determinism: byte-identical trace across replays — one-line repro verified")
	} else {
		fmt.Printf("  replay determinism: VIOLATED (%s vs %s, failure %q)\n", a.TraceHash, b.TraceHash, a.Failure)
	}
	printRaces(a.Events, alwaysRaces || hasAccess(a.Events))
	assertExpect(expect, identical, false)
}

// doReplay replays one token and reports the outcome.
func doReplay(w explore.Workload, token string, alwaysRaces bool) {
	sch, err := explore.ParseToken(token)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptexplore:", err)
		os.Exit(2)
	}
	out := explore.Replay(w, sch)
	fmt.Printf("workload %s, schedule %s\n", w.Name, sch.Token())
	fmt.Printf("  trace %s, decisions taken %s\n", out.TraceHash, out.Schedule.Token())
	if out.Failure != "" {
		fmt.Printf("  FAILURE: %s\n", out.Failure)
	} else {
		fmt.Println("  clean run")
	}
	printRaces(out.Events, alwaysRaces || out.Failure != "")
}

// doCheckReplay is the CI determinism check: record (under PCT so the
// schedule is non-trivial), replay twice, compare hashes.
func doCheckReplay(w explore.Workload, seed int64, depth, horizon int) {
	rec := explore.RunPCT(w, seed, depth, horizon)
	a, b := explore.Replay(w, rec.Schedule), explore.Replay(w, rec.Schedule)
	fmt.Printf("workload %s: recorded %s (%d decisions, trace %s)\n",
		w.Name, rec.Schedule.Token(), rec.Schedule.Len(), rec.TraceHash)
	if a.TraceHash == rec.TraceHash && b.TraceHash == rec.TraceHash {
		fmt.Println("  replay determinism: byte-identical trace across record + 2 replays")
		return
	}
	fmt.Printf("  replay determinism: VIOLATED (record %s, replays %s / %s)\n", rec.TraceHash, a.TraceHash, b.TraceHash)
	os.Exit(1)
}

// printRaces runs the happens-before + lockset checker over a trace and
// prints the verdict. Traces with no annotated accesses are skipped
// unless forced (there is nothing for the checker to see).
func printRaces(events []core.TraceEvent, run bool) {
	if !run {
		return
	}
	races := explore.CheckRaces(events)
	if len(races) == 0 {
		fmt.Println("  race checker: no data races on annotated accesses")
		return
	}
	fmt.Printf("  race checker: %d racy access pair(s)\n", len(races))
	for _, line := range strings.Split(strings.TrimRight(explore.FormatRaces(races), "\n"), "\n") {
		fmt.Println("    " + line)
	}
}

// hasAccess reports whether the trace carries any NoteRead/NoteWrite
// annotations worth race-checking.
func hasAccess(events []core.TraceEvent) bool {
	for _, ev := range events {
		if ev.Kind == core.EvAccess {
			return true
		}
	}
	return false
}

func assertExpect(expect string, found, clean bool) {
	switch expect {
	case "":
	case "found":
		if !found {
			fmt.Println("expectation FAILED: wanted a verified finding")
			os.Exit(1)
		}
	case "clean":
		if !clean {
			fmt.Println("expectation FAILED: wanted a clean exploration")
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "ptexplore: unknown -expect %q\n", expect)
		os.Exit(2)
	}
}
