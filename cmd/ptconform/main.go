// Command ptconform runs the POSIX 1003.4a (Draft 6) conformance
// checklist against the library and prints the report. It exits nonzero
// if any check fails.
package main

import (
	"fmt"
	"os"

	"pthreads/internal/conformance"
)

func main() {
	results := conformance.RunAll()
	fmt.Print(conformance.Format(results))
	for _, r := range results {
		if !r.Pass() {
			os.Exit(1)
		}
	}
}
