// Command ptinversion regenerates the paper's priority-inversion
// artifacts: the Figure 5 timelines under the three mutex protocols with
// the quantified Table 3 comparison, and the Table 4 protocol-mixing
// trace in both unlock modes.
//
// Usage:
//
//	ptinversion              # Figure 5 (a,b,c) + Table 3 quantification
//	ptinversion -table 4     # Table 4 mixing trace
package main

import (
	"flag"
	"fmt"
	"os"

	"pthreads/internal/eval"
)

func main() {
	table := flag.Int("table", 3, "4 prints the Table 4 mixing trace")
	flag.Parse()

	var out string
	var err error
	switch *table {
	case 4:
		out, err = eval.FormatTable4()
	default:
		out, err = eval.FormatFigure5()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptinversion:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
