// Command ptprof runs a named workload under the virtual-time profiler
// and reports where every thread's virtual time went: the attribution
// table, per-object latency histograms, watchdog findings, and — via
// -chrome — a Chrome trace-event JSON file loadable in Perfetto or
// chrome://tracing, whose timeline is the virtual clock.
//
//	ptprof -workload webserver -chrome web.json
//	ptprof -workload inversion -expect inversion
//	ptprof -workload webserver -check
//
// With -fleet, ptprof runs a named fleet scenario instead: every
// simulated host becomes its own process group in the export (distinct
// pid and process_name), all sharing the one virtual timeline.
//
//	ptprof -fleet fleet-echo -chrome fleet.json
//	ptprof -fleet fleet-echo -check
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pthreads/internal/eval"
	"pthreads/internal/fabric"
	"pthreads/internal/metrics"
	"pthreads/internal/trace"
	"pthreads/internal/vtime"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ptprof: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	workload := flag.String("workload", "webserver",
		"scenario to profile: "+strings.Join(eval.ProfileWorkloads(), ", "))
	top := flag.Int("top", 10, "rows per object section in the text profile (0 = all)")
	chrome := flag.String("chrome", "", "write Chrome trace-event JSON to this file")
	jsonOut := flag.String("json", "", "write the machine-readable profile JSON to this file")
	check := flag.Bool("check", false, "run self-checks: determinism, attribution, JSON validity")
	expect := flag.String("expect", "", "assert the watchdog outcome: inversion, deadlock, or clean")
	longHold := flag.Duration("long-hold", 0, "flag mutex holds at least this long (host units map 1:1 to virtual)")
	starvation := flag.Duration("starvation", 0, "flag dispatch latencies at least this long")
	fleet := flag.String("fleet", "", "profile a fleet scenario instead of a workload (fleet-echo, ...)")
	spans := flag.Bool("spans", false, "with -fleet: record distributed spans and draw cross-host flow arrows")
	quiet := flag.Bool("q", false, "suppress the text profile (checks and exports only)")
	flag.Parse()

	// Flag validation up front, every violation the same way: a message
	// and exit 1 (never a silent ignore, never a stray zero exit).
	if flag.NArg() > 0 {
		fail("unexpected arguments: %s", strings.Join(flag.Args(), " "))
	}
	if *top < 0 {
		fail("-top must be >= 0 (got %d)", *top)
	}
	if *spans && *fleet == "" {
		fail("-spans requires -fleet")
	}
	if *fleet != "" {
		if *expect != "" || *jsonOut != "" || *longHold != 0 || *starvation != 0 {
			fail("-expect, -json, -long-hold and -starvation apply to workload profiles, not -fleet")
		}
		runFleet(*fleet, *chrome, *check, *spans, *quiet)
		return
	}

	opt := metrics.Options{
		LongHold:   vtime.Duration(*longHold / time.Nanosecond),
		Starvation: vtime.Duration(*starvation / time.Nanosecond),
	}

	run, err := eval.RunProfiled(*workload, opt)
	if err != nil {
		fail("%v", err)
	}

	if !*quiet {
		fmt.Print(metrics.FormatText(run.Profile, *top))
	}

	if *chrome != "" {
		data, err := metrics.ChromeTrace(run.Events, run.Collector.Findings(), int64(run.End))
		if err != nil {
			fail("chrome export: %v", err)
		}
		if err := os.WriteFile(*chrome, data, 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "ptprof: wrote %s (%d events, %d bytes)\n", *chrome, len(run.Events), len(data))
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(run.Profile, "", "  ")
		if err != nil {
			fail("profile export: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "ptprof: wrote %s\n", *jsonOut)
	}

	if *expect != "" {
		assertExpect(run, *expect)
	}
	if *check {
		selfCheck(*workload, opt, run)
	}
}

// runFleet profiles a whole virtual datacenter: one scenario run, every
// host exported as its own process on the shared virtual timeline. With
// spans, the observability plane rides along: span tracks per host,
// flow arrows across them, and the fleet report on stdout.
func runFleet(name, chrome string, check, spans, quiet bool) {
	sc := fabric.FleetScenarioByName(name)
	if sc == nil {
		var known []string
		for _, s := range fabric.FleetScenarios() {
			known = append(known, s.Name)
		}
		fail("unknown fleet scenario %q (have: %s)", name, strings.Join(known, ", "))
	}
	oc := fabric.ObsConfig{}
	if spans {
		oc = fabric.ObsConfig{Spans: true, Rollup: true, WaitCycle: true}
	}
	out := fabric.RunFleetScheduleObs(*sc, fabric.FleetSchedule{}, oc)
	if out.Failure != "" {
		fail("fleet %s: %s", name, out.Failure)
	}
	data, err := fleetExport(out)
	if err != nil {
		fail("fleet chrome export: %v", err)
	}
	nev := 0
	for _, evs := range out.PerHost {
		nev += len(evs)
	}
	fmt.Printf("fleet %s: %d hosts, %d trace events, fingerprint %s, trace hash %s\n",
		name, len(out.HostNames), nev, out.Fingerprint, out.TraceHash)
	if out.Obs != nil && !quiet {
		fmt.Print(out.Obs.Format())
	}
	if chrome != "" {
		if err := os.WriteFile(chrome, data, 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "ptprof: wrote %s (%d bytes)\n", chrome, len(data))
	}
	if check {
		second := fabric.RunFleetScheduleObs(*sc, fabric.FleetSchedule{}, oc)
		if second.TraceHash != out.TraceHash || second.Fingerprint != out.Fingerprint {
			fail("check: fleet run not deterministic: %s/%s vs %s/%s",
				out.Fingerprint, out.TraceHash, second.Fingerprint, second.TraceHash)
		}
		data2, err := fleetExport(second)
		if err != nil {
			fail("check: fleet chrome export (rerun): %v", err)
		}
		if string(data) != string(data2) {
			fail("check: fleet chrome export differs between two runs — determinism broken")
		}
		if spans {
			// The plane's contract: spans observe, never perturb. A
			// spans-off run of the same scenario must schedule
			// identically.
			bare := fabric.RunFleetSchedule(*sc, fabric.FleetSchedule{})
			if bare.TraceHash != out.TraceHash || bare.Fingerprint != out.Fingerprint {
				fail("check: spans perturbed the schedule: %s/%s with, %s/%s without",
					out.Fingerprint, out.TraceHash, bare.Fingerprint, bare.TraceHash)
			}
			// And the stream itself must be a well-formed trace forest.
			if err := trace.ValidateSpans(out.Obs.Spans, out.Obs.Msgs); err != nil {
				fail("check: %v", err)
			}
		}
		var parsed struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &parsed); err != nil {
			fail("check: fleet chrome export is not valid JSON: %v", err)
		}
		pids := map[float64]bool{}
		for _, ev := range parsed.TraceEvents {
			if pid, ok := ev["pid"].(float64); ok {
				pids[pid] = true
			}
		}
		if len(pids) != len(out.HostNames) {
			fail("check: export has %d distinct pids for %d hosts", len(pids), len(out.HostNames))
		}
		fmt.Fprintf(os.Stderr,
			"ptprof: check ok — fleet deterministic across runs, %d chrome events parse, %d host process groups\n",
			len(parsed.TraceEvents), len(pids))
	}
}

// fleetTraces adapts a fleet outcome into the exporter's host slices.
func fleetTraces(out fabric.FleetOutcome) []metrics.HostTrace {
	hosts := make([]metrics.HostTrace, len(out.HostNames))
	for i := range out.HostNames {
		hosts[i] = metrics.HostTrace{Name: out.HostNames[i], Events: out.PerHost[i], End: out.HostEnds[i]}
	}
	return hosts
}

// fleetExport renders the outcome's Chrome JSON, with the span overlay
// when the run recorded one.
func fleetExport(out fabric.FleetOutcome) ([]byte, error) {
	if out.Obs != nil && len(out.Obs.Spans) > 0 {
		return metrics.ChromeTraceFleetSpans(fleetTraces(out), out.Obs.Spans, out.Obs.Msgs)
	}
	return metrics.ChromeTraceFleet(fleetTraces(out))
}

// assertExpect enforces the watchdog outcome the caller demands; the
// verify script uses it to pin the Figure 5 semantics.
func assertExpect(run *eval.ProfiledRun, want string) {
	inv := len(run.Collector.FindingsOfKind("priority-inversion"))
	dead := len(run.Collector.FindingsOfKind("deadlock"))
	switch want {
	case "inversion":
		if inv == 0 {
			fail("expected a priority-inversion finding; watchdog stayed quiet")
		}
	case "deadlock":
		if dead == 0 {
			fail("expected a deadlock finding; watchdog stayed quiet")
		}
	case "clean":
		if n := len(run.Collector.Findings()); n != 0 {
			fail("expected no findings; got %d: %v", n, run.Collector.Findings()[0])
		}
	default:
		fail("unknown -expect value %q (inversion, deadlock, clean)", want)
	}
	fmt.Fprintf(os.Stderr, "ptprof: expectation %q holds\n", want)
}

// selfCheck reruns the workload and verifies the profiler's contracts:
// (1) the run is deterministic — the Chrome export and profile JSON are
// byte-identical across runs; (2) the export is valid JSON; (3) the
// attribution is complete — every thread's bucket sum equals its
// lifetime, so 100% of virtual time is accounted for.
func selfCheck(workload string, opt metrics.Options, first *eval.ProfiledRun) {
	second, err := eval.RunProfiled(workload, opt)
	if err != nil {
		fail("check rerun: %v", err)
	}

	c1, err := metrics.ChromeTrace(first.Events, first.Collector.Findings(), int64(first.End))
	if err != nil {
		fail("check: chrome export: %v", err)
	}
	c2, err := metrics.ChromeTrace(second.Events, second.Collector.Findings(), int64(second.End))
	if err != nil {
		fail("check: chrome export (rerun): %v", err)
	}
	if string(c1) != string(c2) {
		fail("check: chrome export differs between two runs — determinism broken")
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(c1, &parsed); err != nil {
		fail("check: chrome export is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		fail("check: chrome export has no events")
	}

	j1, _ := json.Marshal(first.Profile)
	j2, _ := json.Marshal(second.Profile)
	if string(j1) != string(j2) {
		fail("check: profile JSON differs between two runs — determinism broken")
	}

	for _, tp := range first.Collector.Threads() {
		if tp.Total() != tp.Lifetime() {
			fail("check: thread %s accounts %v of a %v lifetime — attribution incomplete",
				tp.Name, tp.Total(), tp.Lifetime())
		}
	}
	fmt.Fprintf(os.Stderr,
		"ptprof: check ok — deterministic across runs, %d chrome events parse, %d threads account 100%% of virtual time\n",
		len(parsed.TraceEvents), len(first.Collector.Threads()))
}
